#!/usr/bin/env python3
"""CI gate for exported Chrome traces and benchmark trajectories.

Usage::

    PYTHONPATH=src python scripts/check_trace.py TRACE.json [TRACE2.json ...]
    PYTHONPATH=src python scripts/check_trace.py --bench BENCH.json TRACE.json ...

Fails (exit 1) if any given trace file:

* has no complete ("ph": "X") span events — an empty trace means the
  instrumentation silently stopped recording;
* uses an event category outside the documented vocabulary
  (`repro.machine.metrics.CATEGORY_DESCRIPTIONS`) or advertises a
  category list that drifted from it;
* carries an unexpected schema string (bump `CHROME_TRACE_SCHEMA` and the
  golden file together, deliberately);
* lacks the core counters a traced sort must produce
  (``remaps``, ``messages``, ``bytes_sent``) — pure out-of-core traces
  (``algo.external`` > 0, no remaps) are exempt: the external sort moves
  bytes through the filesystem, not a transport;
* ran the default (fused) bitonic sort but shows no ``coll.fused``
  collectives, or fused collectives that all fell back off the zero-copy
  path (``coll.fused_direct`` == 0) — the compatibility fallback must
  never engage silently on the bundled backends (pass ``--allow-unfused``
  for traces of deliberately unfused runs).  Traces of pure sample-sort
  runs (``algo.sample`` > 0, no bitonic remaps) are exempt: sample sort
  fuses nothing by design;
* records sample-sort runs (``algo.sample`` > 0) with fewer ``remaps``
  than runs (each run is exactly one splitter-driven redistribution) or
  without a ``merge`` span — a sample trace missing its p-way merge
  means the phase instrumentation silently stopped;
* records group-scoped collectives with an inconsistent member tally
  (``coll.group_alltoallv`` > 0 but ``coll.group_size`` == 0, or a mean
  group size outside ``2 .. ranks``);
* claims overlapped collectives (``coll.overlapped`` > 0) but contains
  no ``wait``/``complete`` span — a posted-but-never-waited pipeline
  would mean the nonblocking schedule silently degenerated.

Out-of-core traces (``algo.external`` > 0) must carry their own lane:
``spill`` spans for both the write and read sides, a ``merge/external``
span, and positive ``ext.runs`` / ``ext.spill_bytes`` counters — an
external sort that spilled nothing or never merged means the spill
instrumentation silently stopped.

With ``--expect-adapt`` each trace must additionally carry a positive
``adapt.updates`` counter — the service-lane marker that the online
adapter folded the traced request; a trace of an adapting service
without it means the feedback loop silently disengaged.

With ``--expect-external`` each trace must be (or contain) an
out-of-core run: a positive ``algo.external`` counter, with the spill
lane checks above then applying.  Use it for traces produced under a
memory budget that must have degraded to the external sort.

With ``--bench BENCH.json`` it additionally gates the quick benchmark
trajectory: for every backend, the fused+group variant must not be more
than 25% slower than the unfused world-wide baseline
(``*_fused_over_unfused`` >= 0.75), and (schema
``repro-bitonic-bench/5``+) the overlapped pipeline must not be more
than 10% slower than its synchronous twin (``*_overlap_over_sync`` >=
0.9) — a silently-engaged fallback or an overlap regression shows up
here even when outputs stay correct.  Schema ``repro-bitonic-bench/6``+
trajectories must additionally carry the ``*_sample_over_bitonic``
crossover tables (positive ratios; no floor — which algorithm wins is
the data).  Schema ``repro-bitonic-bench/7`` documents may instead (or
additionally) carry an ``adapt_replay`` section, whose
``adapted_over_static`` ratio must be >= 1.0: the adapting service may
never lose to the frozen-profile one on the recorded load.  The
end-to-end gates apply when the end-to-end sections are present, the
adapt gate when ``adapt_replay`` is; a /7 document with neither fails.
Schema ``repro-bitonic-bench/8`` end-to-end trajectories must
additionally carry the ``external_over_inmem`` crossover table (positive
ratios; no floor — where spilling starts to pay is the data).
"""

import argparse
import json
import sys

from repro.machine.metrics import CATEGORY_DESCRIPTIONS
from repro.trace import CHROME_TRACE_SCHEMA

REQUIRED_COUNTERS = ("remaps", "messages", "bytes_sent")

#: Minimum acceptable fused-over-unfused speedup in the bench gate: the
#: fused path may not be more than 25% slower than the baseline it
#: replaced (guards against the compatibility fallback engaging
#: silently while outputs stay byte-identical).
BENCH_MIN_FUSED_SPEEDUP = 0.75

#: Minimum acceptable overlap-over-sync speedup in the bench gate: the
#: chunked nonblocking pipeline may not be more than 10% slower than its
#: synchronous twin (guards against per-chunk overhead swamping the
#: overlap, or the schedule silently falling back to sync and paying
#: chunking for nothing).
BENCH_MIN_OVERLAP_SPEEDUP = 0.9

#: Floor on the adapt-replay ratio: the adapting service must match or
#: beat the frozen-profile service on the recorded load (the feedback
#: loop may never make routing worse).
BENCH_MIN_ADAPTED_OVER_STATIC = 1.0


def check(path: str, allow_unfused: bool = False,
          expect_adapt: bool = False, expect_external: bool = False) -> list:
    errors = []
    with open(path, encoding="utf-8") as fh:
        doc = json.load(fh)
    other = doc.get("otherData", {})
    if other.get("schema") != CHROME_TRACE_SCHEMA:
        errors.append(
            f"schema {other.get('schema')!r} != expected {CHROME_TRACE_SCHEMA!r}"
        )
    documented = set(CATEGORY_DESCRIPTIONS)
    advertised = set(other.get("categories", []))
    if advertised != documented:
        errors.append(
            f"category vocabulary drifted: trace advertises {sorted(advertised)}, "
            f"documented set is {sorted(documented)}"
        )
    spans = [e for e in doc.get("traceEvents", []) if e.get("ph") == "X"]
    if not spans:
        errors.append("no span events — the trace is empty")
    used = {e.get("cat") for e in spans}
    rogue = used - documented
    if rogue:
        errors.append(f"span events use undocumented categories: {sorted(rogue)}")
    counters = other.get("counters", {})
    external_runs = counters.get("algo.external", 0)
    pure_external = external_runs and not counters.get("remaps", 0)
    if not pure_external:
        missing = [c for c in REQUIRED_COUNTERS if not counters.get(c)]
        if missing:
            errors.append(f"required counters missing or zero: {missing}")
    sample_runs = counters.get("algo.sample", 0)
    if sample_runs:
        # Each sample-sort run is exactly one splitter-driven
        # redistribution, so the (world-summed) remap tally must cover
        # the runs, and the p-way merge must have left spans.
        if counters.get("remaps", 0) < sample_runs:
            errors.append(
                f"algo.sample = {sample_runs} but only "
                f"{counters.get('remaps', 0)} remaps — each sample sort "
                "redistributes exactly once"
            )
        if not any(e.get("cat") == "merge" for e in spans):
            errors.append(
                "algo.sample recorded but no merge span — the p-way "
                "merge never ran (or stopped tracing)"
            )
    if expect_external and not external_runs:
        errors.append(
            "no algo.external counter — the trace never took the "
            "out-of-core path (the memory budget did not degrade it)"
        )
    if external_runs:
        spill_names = {
            e.get("name") for e in spans if e.get("cat") == "spill"
        }
        for side in ("write", "read"):
            if side not in spill_names:
                errors.append(
                    f"algo.external recorded but no spill/{side} span — "
                    "the spill instrumentation silently stopped"
                )
        if not any(
            e.get("cat") == "merge" and e.get("name") == "external"
            for e in spans
        ):
            errors.append(
                "algo.external recorded but no merge/external span — the "
                "bucket merge never ran (or stopped tracing)"
            )
        for counter in ("ext.runs", "ext.spill_bytes"):
            if not counters.get(counter):
                errors.append(
                    f"algo.external recorded but {counter} is missing or "
                    "zero — an external sort that spilled nothing"
                )
    fused = counters.get("coll.fused", 0)
    if not allow_unfused:
        if not fused and not sample_runs and not external_runs:
            errors.append(
                "no coll.fused collectives — the default sort fuses every "
                "remap (pass --allow-unfused for deliberately unfused runs)"
            )
        elif fused and not counters.get("coll.fused_direct"):
            errors.append(
                "every fused collective fell back off the zero-copy path "
                "(coll.fused_direct == 0) — silent compatibility fallback"
            )
    group_calls = counters.get("coll.group_alltoallv", 0)
    group_size = counters.get("coll.group_size", 0)
    if group_calls and not group_size:
        errors.append(
            "coll.group_alltoallv recorded without coll.group_size members"
        )
    if group_calls:
        ranks = other.get("ranks") or 0
        mean = group_size / group_calls
        if not 2 <= mean <= max(ranks, 2):
            errors.append(
                f"mean group size {mean:.2f} outside 2 .. {ranks} — "
                "Lemma-4 group derivation looks wrong"
            )
    if counters.get("coll.overlapped", 0):
        completes = sum(
            1 for e in spans
            if e.get("cat") == "wait" and e.get("name") == "complete"
        )
        if not completes:
            errors.append(
                f"{counters['coll.overlapped']} overlapped collectives "
                "posted but no wait/complete span recorded — the "
                "nonblocking pipeline never completed an op"
            )
        if not counters.get("coll.chunks"):
            errors.append(
                "coll.overlapped recorded without coll.chunks — the "
                "overlapped remaps lost their chunk accounting"
            )
    if expect_adapt and not counters.get("adapt.updates"):
        errors.append(
            "no adapt.updates counter — the traced request never reached "
            "the online adapter (feedback loop silently disengaged)"
        )
    return errors


def check_bench(path: str) -> list:
    """Gate a benchmark trajectory JSON (schema repro-bitonic-bench/3+)."""
    errors = []
    with open(path, encoding="utf-8") as fh:
        doc = json.load(fh)
    schema = doc.get("schema", "")
    if not schema.startswith("repro-bitonic-bench/"):
        return [f"not a bench trajectory (schema {schema!r})"]
    # A /7 document carries the end-to-end trajectory sections, the
    # adapt_replay section, or both; each gate applies to the sections
    # actually present, and a document with neither has nothing to
    # stand on.
    has_end_to_end = bool(
        doc.get("end_to_end") or doc.get("end_to_end_speedup")
    )
    adapt_replay = doc.get("adapt_replay")
    if not has_end_to_end and adapt_replay is None:
        return [
            "neither end-to-end trajectory sections nor an adapt_replay "
            "section — nothing to gate"
        ]
    if adapt_replay is not None:
        ratio = adapt_replay.get("adapted_over_static")
        if not isinstance(ratio, (int, float)):
            errors.append(
                f"adapt_replay.adapted_over_static = {ratio!r}: not a "
                "measured ratio"
            )
        elif ratio < BENCH_MIN_ADAPTED_OVER_STATIC:
            errors.append(
                f"adapt_replay.adapted_over_static = {ratio:.3f}x: the "
                "adapting service lost to the frozen-profile service "
                f"(floor {BENCH_MIN_ADAPTED_OVER_STATIC}x)"
            )
    if not has_end_to_end:
        return errors
    speedups = doc.get("end_to_end_speedup", {})
    fused_tables = {
        name: table
        for name, table in speedups.items()
        if name.endswith("_fused_over_unfused")
    }
    if not fused_tables:
        errors.append(
            "no *_fused_over_unfused speedup tables — bench predates the "
            "fused/group variants (need schema repro-bitonic-bench/3)"
        )
    for name, table in fused_tables.items():
        for size, ratio in table.items():
            if ratio < BENCH_MIN_FUSED_SPEEDUP:
                errors.append(
                    f"{name}[{size}] = {ratio:.3f}x: fused+group more than "
                    f"{(1 - BENCH_MIN_FUSED_SPEEDUP):.0%} slower than the "
                    "unfused baseline (silent fallback or fusion regression)"
                )
    try:
        schema_version = int(schema.rsplit("/", 1)[1])
    except (IndexError, ValueError):
        schema_version = 0
    overlap_tables = {
        name: table
        for name, table in speedups.items()
        if name.endswith("_overlap_over_sync")
    }
    if schema_version >= 5 and not overlap_tables:
        errors.append(
            "no *_overlap_over_sync speedup tables — schema "
            f"{schema!r} promises the overlapped variant"
        )
    # Schema /6+: the sample-vs-bitonic crossover tables must be present
    # and well-formed (positive ratios); no floor is imposed — which
    # algorithm wins is exactly what the table records.
    sample_tables = {
        name: table
        for name, table in speedups.items()
        if name.endswith("_sample_over_bitonic")
    }
    if schema_version >= 6 and not sample_tables:
        errors.append(
            "no *_sample_over_bitonic crossover tables — schema "
            f"{schema!r} promises the sample-sort variant"
        )
    for name, table in sample_tables.items():
        for size, ratio in table.items():
            if not ratio > 0:
                errors.append(
                    f"{name}[{size}] = {ratio!r}: crossover ratios must "
                    "be positive measured speedups"
                )
    # Schema /8+: the out-of-core crossover table must be present and
    # well-formed (positive ratios); no floor — at what budget the
    # spill-to-disk path starts to pay is exactly what it records.
    external_table = doc.get("external_over_inmem")
    if schema_version >= 8 and not external_table:
        errors.append(
            "no external_over_inmem crossover table — schema "
            f"{schema!r} promises the out-of-core variant"
        )
    for size, ratio in (external_table or {}).items():
        if not isinstance(ratio, (int, float)) or not ratio > 0:
            errors.append(
                f"external_over_inmem[{size}] = {ratio!r}: crossover "
                "ratios must be positive measured speedups"
            )
    for name, table in overlap_tables.items():
        for size, ratio in table.items():
            if ratio < BENCH_MIN_OVERLAP_SPEEDUP:
                errors.append(
                    f"{name}[{size}] = {ratio:.3f}x: overlapped pipeline "
                    f"more than {(1 - BENCH_MIN_OVERLAP_SPEEDUP):.0%} slower "
                    "than its synchronous twin (overlap regression)"
                )
    return errors


def main(argv) -> int:
    parser = argparse.ArgumentParser(
        description="validate Chrome traces (and optionally a bench trajectory)"
    )
    parser.add_argument("traces", nargs="*", help="Chrome-trace JSON files")
    parser.add_argument("--bench", default=None,
                        help="benchmark trajectory JSON to gate on the "
                             "fused-over-unfused speedup floor")
    parser.add_argument("--allow-unfused", action="store_true",
                        help="skip the fused-collective requirement (for "
                             "traces of deliberately unfused runs)")
    parser.add_argument("--expect-adapt", action="store_true",
                        help="require a positive adapt.updates counter "
                             "(traces of an adapting service)")
    parser.add_argument("--expect-external", action="store_true",
                        help="require a positive algo.external counter "
                             "(traces of budget-degraded out-of-core runs)")
    args = parser.parse_args(argv)
    if not args.traces and not args.bench:
        parser.print_help(sys.stderr)
        return 2
    failed = False
    for path in args.traces:
        errors = check(path, allow_unfused=args.allow_unfused,
                       expect_adapt=args.expect_adapt,
                       expect_external=args.expect_external)
        if errors:
            failed = True
            print(f"FAIL {path}")
            for err in errors:
                print(f"  - {err}")
        else:
            with open(path, encoding="utf-8") as fh:
                doc = json.load(fh)
            n = sum(1 for e in doc["traceEvents"] if e.get("ph") == "X")
            ranks = doc["otherData"].get("ranks")
            print(f"OK   {path}: {n} spans across {ranks} ranks")
    if args.bench:
        errors = check_bench(args.bench)
        if errors:
            failed = True
            print(f"FAIL {args.bench}")
            for err in errors:
                print(f"  - {err}")
        else:
            with open(args.bench, encoding="utf-8") as fh:
                bench_doc = json.load(fh)
            parts = []
            if bench_doc.get("end_to_end") or bench_doc.get("end_to_end_speedup"):
                parts.append(
                    f"fused+group within {BENCH_MIN_FUSED_SPEEDUP}x floor "
                    f"of the unfused baseline; overlap within "
                    f"{BENCH_MIN_OVERLAP_SPEEDUP}x floor of sync"
                )
            if bench_doc.get("adapt_replay") is not None:
                ratio = bench_doc["adapt_replay"].get("adapted_over_static")
                parts.append(
                    f"adapted_over_static {ratio:.3f}x >= "
                    f"{BENCH_MIN_ADAPTED_OVER_STATIC}x"
                )
            print(f"OK   {args.bench}: " + "; ".join(parts))
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
