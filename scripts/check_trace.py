#!/usr/bin/env python3
"""CI gate for exported Chrome traces.

Usage: PYTHONPATH=src python scripts/check_trace.py TRACE.json [TRACE2.json ...]

Fails (exit 1) if any given trace file:

* has no complete ("ph": "X") span events — an empty trace means the
  instrumentation silently stopped recording;
* uses an event category outside the documented vocabulary
  (`repro.machine.metrics.CATEGORY_DESCRIPTIONS`) or advertises a
  category list that drifted from it;
* carries an unexpected schema string (bump `CHROME_TRACE_SCHEMA` and the
  golden file together, deliberately);
* lacks the core counters a traced sort must produce
  (``remaps``, ``messages``, ``bytes_sent``).
"""

import json
import sys

from repro.machine.metrics import CATEGORY_DESCRIPTIONS
from repro.trace import CHROME_TRACE_SCHEMA

REQUIRED_COUNTERS = ("remaps", "messages", "bytes_sent")


def check(path: str) -> list:
    errors = []
    with open(path, encoding="utf-8") as fh:
        doc = json.load(fh)
    other = doc.get("otherData", {})
    if other.get("schema") != CHROME_TRACE_SCHEMA:
        errors.append(
            f"schema {other.get('schema')!r} != expected {CHROME_TRACE_SCHEMA!r}"
        )
    documented = set(CATEGORY_DESCRIPTIONS)
    advertised = set(other.get("categories", []))
    if advertised != documented:
        errors.append(
            f"category vocabulary drifted: trace advertises {sorted(advertised)}, "
            f"documented set is {sorted(documented)}"
        )
    spans = [e for e in doc.get("traceEvents", []) if e.get("ph") == "X"]
    if not spans:
        errors.append("no span events — the trace is empty")
    used = {e.get("cat") for e in spans}
    rogue = used - documented
    if rogue:
        errors.append(f"span events use undocumented categories: {sorted(rogue)}")
    counters = other.get("counters", {})
    missing = [c for c in REQUIRED_COUNTERS if not counters.get(c)]
    if missing:
        errors.append(f"required counters missing or zero: {missing}")
    return errors


def main(argv) -> int:
    if not argv:
        print(__doc__, file=sys.stderr)
        return 2
    failed = False
    for path in argv:
        errors = check(path)
        if errors:
            failed = True
            print(f"FAIL {path}")
            for err in errors:
                print(f"  - {err}")
        else:
            with open(path, encoding="utf-8") as fh:
                doc = json.load(fh)
            n = sum(1 for e in doc["traceEvents"] if e.get("ph") == "X")
            ranks = doc["otherData"].get("ranks")
            print(f"OK   {path}: {n} spans across {ranks} ranks")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
