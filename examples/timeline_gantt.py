#!/usr/bin/env python3
"""Timelines: watching the paper's claims happen.

Renders ASCII Gantt charts of traced runs on the simulated machine:

1. the Smart sort — a tight, perfectly balanced alternation of sort (S),
   merge (m) and transfer (t) bars (the bitonic network is oblivious, so
   every processor does identical work);
2. the unfused long-message version — the same run with visible pack (p) /
   unpack (u) bars eating ~80% of the communication phase (Table 5.4's
   story, frame by frame);
3. sample sort on zero-entropy keys — one overloaded processor works while
   the rest idle (dots), the §5.5 skew-sensitivity argument as a picture.

Run:  python examples/timeline_gantt.py
"""

from repro import ParallelSampleSort, SmartBitonicSort, make_keys
from repro.viz import render_gantt


def main() -> None:
    P, n = 8, 16 * 1024
    keys = make_keys(P * n, seed=13)

    print("1. Smart bitonic sort (fused) — balanced phases")
    print("=" * 72)
    res = SmartBitonicSort().run(keys, P, trace=True, verify=True)
    print(render_gantt(res.traces, width=64))

    print("\n2. Long messages without fusion — pack/unpack dominate comm")
    print("=" * 72)
    res = SmartBitonicSort(fused=False).run(keys, P, trace=True, verify=True)
    print(render_gantt(res.traces, width=64))

    print("\n3. Sample sort on zero-entropy keys — load imbalance")
    print("=" * 72)
    skew = make_keys(P * n, seed=13, distribution="zero-entropy")
    res = ParallelSampleSort().run(skew, P, trace=True, verify=True)
    print(render_gantt(res.traces, width=64))
    print("\nOne rank owns the single bucket; everyone else idles (dots) — "
          "the imbalance bitonic sort structurally cannot have.")


if __name__ == "__main__":
    main()
