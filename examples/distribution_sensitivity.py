#!/usr/bin/env python3
"""Distribution sensitivity: why being *oblivious* matters (§5.5).

Sample sort picks splitters from a sample of the keys; a skewed
distribution produces unbalanced buckets, one processor receives far more
than n keys, and the makespan follows the most loaded node.  Bitonic sort's
communication pattern is fixed by the network — it cannot be unbalanced by
any input.

This example runs both sorts over progressively nastier key distributions
and prints the slowdown each suffers relative to its uniform-input time.

Run:  python examples/distribution_sensitivity.py
"""

from repro import ParallelSampleSort, SmartBitonicSort, make_keys

DISTRIBUTIONS = [
    "uniform",
    "gaussian",
    "sorted",
    "low-entropy",
    "zero-entropy",
]


def main() -> None:
    P, n = 16, 16 * 1024
    bitonic = SmartBitonicSort()
    sample = ParallelSampleSort()

    base = {}
    print(f"{P} processors, {n // 1024}K keys each; us/key "
          f"(slowdown vs uniform)\n")
    print(f"{'distribution':<14} {'bitonic (smart)':>22} {'sample sort':>22}")
    print("-" * 60)
    for dist in DISTRIBUTIONS:
        keys = make_keys(P * n, distribution=dist, seed=9)
        tb = bitonic.run(keys, P, verify=True).stats.us_per_key
        ts = sample.run(keys, P, verify=True).stats.us_per_key
        if dist == "uniform":
            base = {"b": tb, "s": ts}
        print(f"{dist:<14} {tb:>14.3f} ({tb / base['b']:>4.2f}x)"
              f" {ts:>14.3f} ({ts / base['s']:>4.2f}x)")

    print(
        "\nBitonic sort's times are identical across distributions (its "
        "compare-exchange pattern is data-independent); sample sort degrades "
        "as its splitters lose resolution — the paper's argument for bitonic "
        "sort on skewed inputs (§5.5)."
    )


if __name__ == "__main__":
    main()
