#!/usr/bin/env python3
"""Machine designer: how LogGP parameters move the algorithmic crossovers.

The paper's closing analysis (§3.4.3) observes that the best remapping
strategy depends on the machine: "Given the model parameters L, o, g, G and
P we can decide which algorithm is the best for a given data size n".  This
example sweeps the long-message bandwidth (1/G) and the per-message gap g
around the Meiko CS-2 point and reports which strategy has the lowest
predicted communication time, showing:

* with expensive messages (large g) the blocked strategy's few-huge-
  messages profile wins further up the P axis;
* with cheap bandwidth (small G) volume stops mattering and the remap-count
  advantage of the smart layout dominates;
* the smart layout is never beaten under short messages (it is optimal on
  every LogP metric simultaneously, §3.4.2).

Run:  python examples/machine_designer.py
"""

from dataclasses import replace

from repro import MEIKO_CS2
from repro.theory import best_algorithm


def main() -> None:
    N = 1 << 20
    base = MEIKO_CS2.network
    print(f"Best strategy by predicted LogGP communication time, N = {N:,} keys\n")

    for g_scale, G_scale, label in [
        (1.0, 1.0, "Meiko CS-2 (calibrated)"),
        (4.0, 1.0, "4x message gap (expensive small messages)"),
        (1.0, 4.0, "1/4 long-message bandwidth"),
        (1.0, 0.1, "10x long-message bandwidth"),
        (0.25, 0.1, "low-overhead, high-bandwidth fabric"),
    ]:
        net = replace(base, g=base.g * g_scale, G=base.G * G_scale)
        row = []
        for P in (2, 4, 8, 16, 32, 64):
            best, _ = best_algorithm(N, P, net.with_procs(P), long_messages=True)
            row.append(f"P={P}:{best.split('-')[0]:<7}")
        print(f"{label:<45} " + " ".join(row))

    print("\nProblem-size crossover at P=4 (long messages): few huge messages "
          "win small problems, low volume wins big ones:")
    for lgN in range(6, 22, 2):
        best, table = best_algorithm(1 << lgN, 4, base.with_procs(4))
        print(f"  N=2^{lgN:<3} best={best:<15} "
              + "  ".join(f"{k}={v:,.0f}us" for k, v in sorted(table.items())))

    print("\nUnder short messages (pure LogP) the smart layout is optimal on "
          "remaps, volume AND messages, so it wins for P >= 4 (at P = 2 the "
          "whole communication region is a single pairwise exchange, which "
          "the blocked strategy does in one communication step):")
    for P in (2, 8, 32):
        best, table = best_algorithm(N, P, base.with_procs(P), long_messages=False)
        ordered = ", ".join(f"{k}={v:,.0f}us" for k, v in sorted(table.items(),
                                                                 key=lambda kv: kv[1]))
        print(f"  P={P:<3} best={best:<8} ({ordered})")


if __name__ == "__main__":
    main()
