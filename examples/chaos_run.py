"""A sort surviving an adversarial network.

The bitonic sort is oblivious: it routes data without ever looking at it,
so a single lost or bit-flipped message silently corrupts the output.
This example runs the real message-passing sort (threads backend) through
`repro.faults`' injected chaos — 5% message drops, plus corruption and a
mid-run rank crash — and shows the reliable transport and the phase-level
checkpoints absorbing all of it.  Every run is verified element-exactly
against np.sort before a report is printed.

See docs/ROBUSTNESS.md for the fault model, the retry/backoff policy and
the checkpoint format.

Run:  PYTHONPATH=src python examples/chaos_run.py
"""

from repro import FaultPlan, make_keys, run_chaos_sort, sort
from repro.errors import CorruptPayloadError
from repro.harness import run_experiment
from repro.harness.report import format_result

P = 4
keys = make_keys(P * 4096, seed=7)

print("=== 0. the front door: one call, faults armed ======================")
# `repro.sort` wraps every rank's communicator in the reliable transport
# when a FaultPlan is passed; the report carries the injection/recovery
# ledger.  (Crash/restart choreography needs run_chaos_sort, below.)
front = sort(keys, P, backend="threads", faults=FaultPlan(seed=1, drop=0.05))
print(front.describe())

print()
print("=== 1. a 5% drop plan: absorbed by retransmission =================")
plan = FaultPlan(seed=1, drop=0.05)
report = run_chaos_sort(keys, P, plan)
print(report.describe())

print()
print("=== 2. drops + duplicates + bit flips, all at once ================")
plan = FaultPlan(seed=11, drop=0.05, duplicate=0.05, corrupt=0.05)
report = run_chaos_sort(keys, P, plan)
print(report.describe())

print()
print("=== 3. rank 2 dies in phase 2: checkpoint restart =================")
plan = FaultPlan(seed=3, drop=0.02, crash_rank=2, crash_phase=2)
report = run_chaos_sort(keys, P, plan)
print(report.describe())

print()
print("=== 4. a hopeless link fails loudly, never silently ===============")
# Corrupt every copy: the checksum rejects them all and the watchdog
# escalates to a typed error naming the culprit — a wrong sort is
# impossible.
plan = FaultPlan(seed=5, corrupt=1.0)
try:
    run_chaos_sort(keys, P, plan, max_retries=3)
except CorruptPayloadError as exc:
    print(f"caught {type(exc).__name__}: rank={exc.rank} "
          f"phase={exc.phase} rejected copies={exc.attempts}")
    print(f"  {exc}")

print()
print("=== 5. the simulator's view: overhead vs fault rate ===============")
# The same injector plugs into the LogGP machine, where retransmissions
# are charged simulated time — rate 0 must be byte-identical to baseline.
print(format_result(run_experiment("chaos-sweep", sizes=(4,), P=8)))
