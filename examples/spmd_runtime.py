#!/usr/bin/env python3
"""Running Algorithm 1 as a real message-passing program.

Everything else in this library *simulates* the parallel machine; this
example runs the paper's sort on the in-process SPMD runtime — P concurrent
threads exchanging NumPy arrays through MPI-style collectives — and
cross-checks it against both `np.sort` and the simulator implementation.

The program below is written against the abstract `Comm` interface, whose
methods deliberately mirror mpi4py's (`alltoallv`, `allgather`, `bcast`,
`sendrecv`): porting it to a cluster is a matter of wrapping
`mpi4py.MPI.COMM_WORLD` in the same five methods.

Run:  python examples/spmd_runtime.py
"""

import time

import numpy as np

from repro import SmartBitonicSort, make_keys
from repro.runtime import (
    gather_natural_order,
    local_bitrev_slice,
    run_spmd,
    spmd_bitonic_sort,
    spmd_fft,
)


def main() -> None:
    P, n = 8, 64 * 1024
    keys = make_keys(P * n, seed=11)

    print(f"SPMD smart bitonic sort: {P} concurrent ranks x {n // 1024}K keys")

    def sort_program(comm):
        local = keys[comm.rank * n:(comm.rank + 1) * n]
        t0 = time.perf_counter()
        out = spmd_bitonic_sort(comm, local)
        elapsed = time.perf_counter() - t0
        # A collective the algorithm itself doesn't need — just to report.
        times = comm.allgather(elapsed)
        return out, times

    t0 = time.perf_counter()
    results = run_spmd(P, sort_program)
    wall = time.perf_counter() - t0
    parts = [out for out, _ in results]
    merged = np.concatenate(parts)
    assert np.array_equal(merged, np.sort(keys)), "SPMD sort disagrees with np.sort"
    sim = SmartBitonicSort().run(keys, P).sorted_keys
    assert np.array_equal(merged, sim), "SPMD sort disagrees with the simulator"
    per_rank = results[0][1]
    print(f"  verified against np.sort and the simulator implementation")
    print(f"  wall {wall * 1e3:.0f} ms total; per-rank busy "
          f"{min(per_rank) * 1e3:.0f}-{max(per_rank) * 1e3:.0f} ms "
          f"(threads overlap where NumPy drops the GIL)")

    print(f"\nSPMD FFT: {P} ranks x {n // 1024}K complex points")
    rng = np.random.default_rng(3)
    x = rng.normal(size=P * n) + 1j * rng.normal(size=P * n)

    def fft_program(comm):
        local = local_bitrev_slice(x, comm.rank, comm.size)
        return gather_natural_order(comm, spmd_fft(comm, local))

    spectrum = run_spmd(P, fft_program)[0]
    assert np.allclose(spectrum, np.fft.fft(x), rtol=1e-9, atol=1e-6)
    print("  verified against np.fft.fft — one alltoallv remap, as in [CKP+93]")


if __name__ == "__main__":
    main()
