#!/usr/bin/env python3
"""Running Algorithm 1 as a real message-passing program.

Everything else in this library *simulates* the parallel machine; this
example runs the paper's sort on the in-process SPMD runtime — P concurrent
threads exchanging NumPy arrays through MPI-style collectives — traced, via
the unified front door (`repro.sort`), and then drops down to the raw
`Comm` interface for the FFT to show the layer the front door stands on.

The low-level programs are written against the abstract `Comm` interface,
whose methods deliberately mirror mpi4py's (`alltoallv`, `allgather`,
`bcast`, `sendrecv`): porting them to a cluster is a matter of wrapping
`mpi4py.MPI.COMM_WORLD` in the same five methods.

Run:  python examples/spmd_runtime.py
"""

import numpy as np

from repro import make_keys, sort
from repro.runtime import (
    gather_natural_order,
    local_bitrev_slice,
    run_spmd,
    spmd_fft,
)


def main() -> None:
    P, n = 8, 64 * 1024
    keys = make_keys(P * n, seed=11)

    print(f"SPMD smart bitonic sort: {P} concurrent ranks x {n // 1024}K keys")

    # One call: the real threads runtime, phase tracing armed, the output
    # verified element-exactly against np.sort before the report returns.
    report = sort(keys, P, backend="threads", trace=True)
    assert np.array_equal(report.sorted_keys, np.sort(keys))
    print(f"  verified; wall {report.wall_seconds * 1e3:.0f} ms total "
          f"(threads overlap where NumPy drops the GIL)")

    # The traced run aligns three views of the same phases: measured host
    # time, the LogGP simulation, and the closed-form prediction.  The
    # deviation column names the phases where reality and model disagree.
    print()
    print(report.phases.describe())

    # The same call with backend="procs" runs one OS process per rank
    # (shared-memory collectives, no GIL anywhere) — byte-identical output.

    print(f"\nSPMD FFT: {P} ranks x {n // 1024}K complex points")
    rng = np.random.default_rng(3)
    x = rng.normal(size=P * n) + 1j * rng.normal(size=P * n)

    def fft_program(comm):
        local = local_bitrev_slice(x, comm.rank, comm.size)
        return gather_natural_order(comm, spmd_fft(comm, local))

    spectrum = run_spmd(P, fft_program)[0]
    assert np.allclose(spectrum, np.fft.fft(x), rtol=1e-9, atol=1e-6)
    print("  verified against np.fft.fft — one alltoallv remap, as in [CKP+93]")


if __name__ == "__main__":
    main()
