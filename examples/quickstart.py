#!/usr/bin/env python3
"""Quickstart: sort one million keys with the smart-layout bitonic sort.

This is the 60-second tour of the library: generate the paper's workload
(uniform 31-bit keys), run Algorithm 1 through the unified front door
(`repro.sort`) on a simulated 32-node Meiko CS-2, verify the result end
to end, and read off the numbers the paper reports — simulated time per
key, the communication metrics (remaps R, volume V, messages M), and the
computation/communication breakdown.

Run:  python examples/quickstart.py
"""

from repro import counts_for, make_keys, sort


def main() -> None:
    P = 32                       # processors on the simulated machine
    keys = make_keys(1 << 20)    # 1M uniform 31-bit keys (the paper's workload)
    n = keys.size // P

    print(f"Sorting {keys.size:,} keys on {P} simulated processors "
          f"({n:,} keys each)\n")

    # One call: algorithm + substrate in, one SortReport out.  The same
    # front door runs the real SPMD backends (backend="threads"/"procs").
    st = sort(keys, P).stats

    print("Smart bitonic sort (Algorithm 1):")
    print(f"  simulated time        {st.elapsed_us / 1e6:8.4f} s "
          f"({st.us_per_key:.3f} us/key)")
    print(f"  computation           {st.computation_per_key:8.3f} us/key")
    print(f"  communication         {st.communication_per_key:8.3f} us/key")
    print(f"  remaps R              {st.remaps:8d}")
    print(f"  volume V              {st.volume_per_proc:8,} elements/processor")
    print(f"  messages M            {st.messages_per_proc:8,} per processor")

    # The closed forms of §3.4 predict the measured counts exactly.
    theory = counts_for("smart", keys.size, P)
    assert (theory.remaps, theory.volume, theory.messages) == (
        st.remaps, st.volume_per_proc, st.messages_per_proc
    )
    print("  (matches the paper's closed-form R/V/M exactly)\n")

    # Compare with the strongest prior approach, cyclic-blocked remapping.
    baseline = sort(keys, P, algorithm="cyclic-blocked").stats
    print("Cyclic-Blocked baseline [CDMS94]:")
    print(f"  simulated time        {baseline.elapsed_us / 1e6:8.4f} s "
          f"({baseline.us_per_key:.3f} us/key)")
    print(f"  remaps R              {baseline.remaps:8d}")
    print(f"  volume V              {baseline.volume_per_proc:8,} elements/processor")
    print(f"\nSpeedup of Smart over Cyclic-Blocked: "
          f"{baseline.elapsed_us / st.elapsed_us:.2f}x")


if __name__ == "__main__":
    main()
