#!/usr/bin/env python3
"""Layout explorer: visualize the paper's data layouts and remap schedules.

Renders, for a chosen (N, P):

* the absolute-address bit patterns of the blocked, cyclic and smart
  layouts (the shaded/unshaded diagrams of Chapter 3, Figures 3.4-3.8);
* the complete smart remap schedule — which layout is adopted at which
  network column, how many bits change at each remap (Lemma 3), and the
  pack masks (§3.3.1);
* the communication-metric comparison (R / V / M) against cyclic-blocked
  and blocked remapping, plus the LogP/LogGP communication-time predictions
  (§3.4) on the Meiko CS-2 parameters.

Run:  python examples/layout_explorer.py [lgN] [lgP]
(default: the paper's running example, N=256 and P=16 — Figure 3.3/3.4)
"""

import sys

from repro import MEIKO_CS2, blocked_layout, cyclic_layout, smart_schedule
from repro.layouts import cyclic_blocked_schedule
from repro.remap import pack_mask, unpack_mask
from repro.theory import best_algorithm, counts_for
from repro.theory.logp_time import loggp_comm_time, logp_comm_time


def main() -> None:
    lgN = int(sys.argv[1]) if len(sys.argv) > 1 else 8
    lgP = int(sys.argv[2]) if len(sys.argv) > 2 else 4
    N, P = 1 << lgN, 1 << lgP
    n = N // P

    print(f"N = {N} keys on P = {P} processors (n = {n} keys each)\n")

    print("Basic layouts (MSB first; P = processor bit, . = local bit):")
    print(f"  blocked  {blocked_layout(N, P).pattern()}")
    print(f"  cyclic   {cyclic_layout(N, P).pattern()}\n")

    sched = smart_schedule(N, P)
    print("Smart remap schedule (Algorithm 1) — compare Figure 3.4:")
    print(sched.describe())
    print()

    print("Pack/unpack masks per remap (S = bit that changes, §3.3.1):")
    prev = sched.initial_layout
    for i, ph in enumerate(sched.phases):
        print(f"  remap {i}: pack {pack_mask(prev, ph.layout)}   "
              f"unpack {unpack_mask(prev, ph.layout)}")
        prev = ph.layout
    print()

    print("Communication metrics (per processor):")
    print(f"  {'strategy':<16} {'remaps R':>9} {'volume V':>10} {'messages M':>11}")
    for strat in ("blocked", "cyclic-blocked", "smart"):
        try:
            c = counts_for(strat, N, P)
        except Exception as exc:
            print(f"  {strat:<16} not applicable: {exc}")
            continue
        print(f"  {strat:<16} {c.remaps:>9} {c.volume:>10,} {c.messages:>11,}")
    try:
        cb = cyclic_blocked_schedule(N, P)
        saved = cb.volume_per_processor() - sched.volume_per_processor()
        print(f"\n  smart remapping saves {cb.num_remaps - sched.num_remaps} remaps "
              f"and {saved:,} transferred elements/processor vs cyclic-blocked")
    except Exception:
        print(f"\n  cyclic-blocked needs N >= P**2; smart has no such restriction")

    net = MEIKO_CS2.network.with_procs(P)
    print("\nPredicted communication time on the Meiko CS-2 (us/processor):")
    print(f"  {'strategy':<16} {'short msgs (LogP)':>18} {'long msgs (LogGP)':>18}")
    for strat in ("blocked", "cyclic-blocked", "smart"):
        c = counts_for(strat, N, P)
        print(f"  {strat:<16} {logp_comm_time(c, net):>18,.1f} "
              f"{loggp_comm_time(c, net):>18,.1f}")
    best_short, _ = best_algorithm(N, P, net, long_messages=False)
    best_long, _ = best_algorithm(N, P, net, long_messages=True)
    print(f"\n  best with short messages: {best_short}")
    print(f"  best with long messages:  {best_long}"
          + ("   (blocked wins at tiny P by sending few huge messages, §3.4.3)"
             if best_long == "blocked" else ""))


if __name__ == "__main__":
    main()
