#!/usr/bin/env python3
"""FFT on the remap framework — the paper's own generalization (Ch. 7).

The bitonic network's machinery transfers unchanged to any butterfly
computation.  This example:

1. runs the parallel FFT on the simulated machine and verifies it against
   NumPy, showing the classic single blocked→cyclic remap for n >= P and
   the sliding-window schedule when n < P;
2. re-reads the same technique for a *memory hierarchy*: executing the
   butterfly in cache-resident tiles cuts slow-memory traffic by ~lg C,
   exactly the "maximize the ratio of local accesses to remote accesses"
   program of the thesis' final paragraphs.

Run:  python examples/fft_butterfly.py
"""

import numpy as np

from repro.fft import ParallelFFT, butterfly_schedule
from repro.hierarchy import (
    naive_butterfly_traffic,
    tiled_butterfly_traffic,
    tiled_fft,
)
from repro.utils.bits import ilog2


def main() -> None:
    rng = np.random.default_rng(7)

    print("Parallel FFT on the simulated Meiko CS-2")
    print("=" * 56)
    for N, P in [(1 << 14, 16), (1 << 8, 64)]:
        x = rng.normal(size=N) + 1j * rng.normal(size=N)
        phases = butterfly_schedule(N, P)
        res = ParallelFFT().run(x, P, verify=True)
        windows = ", ".join(lay.name for lay, _ in phases)
        print(f"\nN={N:>6}, P={P}: {len(phases) - 1} remap(s)  [{windows}]")
        print(f"  verified against np.fft.fft; "
              f"{res.stats.volume_per_proc:,} points sent/processor, "
              f"{res.stats.us_per_key:.3f} simulated us/point")
        if N // P >= P:
            print("  (n >= P: the classic one-remap FFT of [CKP+93])")
        else:
            print("  (n < P: the sliding window lifts the N >= P**2 "
                  "restriction, as the smart layout does for sorting)")

    print("\nThe same idea as cache tiling (thesis Ch. 7, last paragraphs)")
    print("=" * 56)
    N = 1 << 18
    x = rng.normal(size=N) + 1j * rng.normal(size=N)
    print(f"{'cache words':>12} {'naive traffic':>15} {'tiled traffic':>15} "
          f"{'saving':>8} {'passes':>7}")
    for cap in (1 << 4, 1 << 8, 1 << 12):
        res = tiled_fft(x, cap)
        naive = naive_butterfly_traffic(N, cap)
        tiled = tiled_butterfly_traffic(N, cap)
        assert res.traffic.total_traffic == tiled
        print(f"{cap:>12,} {naive:>15,} {tiled:>15,} "
              f"{naive / tiled:>7.1f}x {res.passes:>7}")
    np.testing.assert_allclose(res.output, np.fft.fft(x), rtol=1e-9, atol=1e-6)
    print("\nEach tile residency runs lg C butterfly levels locally — the "
          "cache-level twin of 'lg n steps per remap' (Lemma 1).")


if __name__ == "__main__":
    main()
