#!/usr/bin/env python3
"""Sorting showdown: bitonic vs radix vs sample sort across machine sizes.

Reproduces the §5.5 comparison interactively: all five algorithms run on
the same workloads over a sweep of processor counts, printing simulated
time per key and the winner per configuration.  The paper's conclusion —
sample sort wins overall, bitonic beats radix at small P, and the blocked
strategy is surprisingly strong at P=2 — falls out of the table.

Run:  python examples/sorting_showdown.py [keys_per_proc_in_K]
"""

import sys

from repro import (
    BlockedMergeBitonicSort,
    CyclicBlockedBitonicSort,
    ParallelRadixSort,
    ParallelSampleSort,
    SmartBitonicSort,
    make_keys,
)


def main() -> None:
    nk = int(sys.argv[1]) if len(sys.argv) > 1 else 16
    n = nk * 1024
    algos = [
        SmartBitonicSort(),
        CyclicBlockedBitonicSort(),
        BlockedMergeBitonicSort(),
        ParallelRadixSort(),
        ParallelSampleSort(),
    ]
    print(f"{nk}K keys per processor, simulated Meiko CS-2, us/key "
          f"(* = winner)\n")
    header = f"{'P':>4} " + "".join(f"{a.name:>16}" for a in algos)
    print(header)
    print("-" * len(header))
    for P in (2, 4, 8, 16, 32, 64):
        keys = make_keys(P * n, seed=42)
        times = []
        for a in algos:
            try:
                times.append(a.run(keys, P, verify=True).stats.us_per_key)
            except Exception:
                times.append(float("nan"))
        best = min(t for t in times if t == t)
        cells = "".join(
            f"{t:>15.3f}{'*' if t == best else ' '}" if t == t else f"{'n/a':>16}"
            for t in times
        )
        print(f"{P:>4} {cells}")
    print("\nNotes: bitonic variants slow with lg P (more remap phases); "
          "radix is flat in P; sample sort pays one redistribution and wins; "
          "at P=2 few huge messages make even the fixed blocked layout strong.")


if __name__ == "__main__":
    main()
