"""The overlapped communication schedule: nonblocking collectives and
chunked remap pipelining.

Covers the :func:`~repro.remap.exchange.chunk_plan` partition algebra,
byte-equality of the overlapped pipeline against the synchronous path
across backend × fused × grouped, out-of-order ``wait()`` on both
backends, pending-op leak detection at job teardown, the two-in-flight
cap of the procs arena protocol, the fault-transport fallback (armed
injectors force the synchronous path), the tracer's wait-split
accounting, and the planner/service plumbing of the ``overlap`` /
``chunks`` knobs.
"""

import numpy as np
import pytest

from repro.api import sort
from repro.errors import CommunicationError
from repro.layouts import smart_schedule
from repro.remap.cache import cached_remap_plan
from repro.remap.exchange import chunk_plan
from repro.runtime import BackendOptions, run_spmd, spmd_bitonic_sort
from repro.trace import Tracer, build_phase_report
from repro.utils.rng import make_keys

BACKENDS = ("threads", "procs")


@pytest.fixture
def small_chunks(monkeypatch):
    """Lower the pipeline's chunk-size floor so the overlapped schedule
    engages at test-sized partitions (procs workers fork after the patch,
    so they inherit it)."""
    import repro.runtime.bitonic_spmd as bs

    monkeypatch.setattr(bs, "_MIN_CHUNK_ELEMS", 64)


def _plans(N, P):
    schedule = smart_schedule(N, P)
    layout = schedule.initial_layout
    for phase in schedule.phases:
        for r in range(P):
            yield cached_remap_plan(layout, phase.layout, r)
        layout = phase.layout


class TestChunkPlan:
    def test_single_chunk_is_identity(self):
        plan = next(_plans(1024, 4))
        assert chunk_plan(plan, 1) == (plan,)
        assert chunk_plan(plan, 0) == (plan,)

    @pytest.mark.parametrize("K", [2, 3, 4, 7])
    def test_sub_plans_partition_every_pair(self, K):
        """The union of the sub-plans' per-pair indices is exactly the
        full plan's, element order preserved, with no empty messages."""
        for plan in _plans(4096, 8):
            subs = chunk_plan(plan, K)
            assert len(subs) == K
            for side in ("send", "recv"):
                full = getattr(plan, side)
                for peer, idx in full.items():
                    pieces = [
                        getattr(s, side)[peer]
                        for s in subs
                        if peer in getattr(s, side)
                    ]
                    np.testing.assert_array_equal(
                        np.concatenate(pieces), idx
                    )
                # No sub-plan invents a peer.
                for s in subs:
                    assert set(getattr(s, side)) <= set(full)
                    for arr in getattr(s, side).values():
                        assert arr.size > 0

    def test_sender_receiver_boundaries_agree(self):
        """A matched (src, dst) pair slices to identical element counts
        in every chunk — the headerless property the pipeline rides on."""
        K = 4
        N, P = 4096, 8
        all_plans = {p.rank: p for p in _plans(N, P) if True}
        # Group plans per transition: regenerate per phase.
        schedule = smart_schedule(N, P)
        layout = schedule.initial_layout
        for phase in schedule.phases:
            plans = {
                r: cached_remap_plan(layout, phase.layout, r)
                for r in range(P)
            }
            subs = {r: chunk_plan(plans[r], K) for r in range(P)}
            for src in range(P):
                for dst, idx in plans[src].send.items():
                    for c in range(K):
                        sent = subs[src][c].send.get(dst)
                        got = subs[dst][c].recv.get(src)
                        a = 0 if sent is None else sent.size
                        b = 0 if got is None else got.size
                        assert a == b
            layout = phase.layout

    def test_keeps_are_not_chunked(self):
        plan = next(_plans(1024, 4))
        for s in chunk_plan(plan, 4):
            assert s.keep_src.size == 0
            assert s.keep_dst.size == 0

    def test_memoized_on_the_plan(self):
        plan = next(_plans(1024, 4))
        assert chunk_plan(plan, 3) is chunk_plan(plan, 3)


class TestOverlapByteEquality:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("fused", [True, False])
    @pytest.mark.parametrize("grouped", [True, False])
    def test_overlap_matches_sync(self, backend, fused, grouped,
                                  small_chunks):
        """The overlapped pipeline is byte-identical to the synchronous
        path on every backend × fused × grouped combination."""
        N, P = 4096, 4
        keys = make_keys(N, seed=11)
        n = N // P

        def prog_sync(c):
            return spmd_bitonic_sort(
                c, keys[c.rank * n : (c.rank + 1) * n],
                fused=fused, grouped=grouped,
            )

        def prog_overlap(c):
            return spmd_bitonic_sort(
                c, keys[c.rank * n : (c.rank + 1) * n],
                fused=fused, grouped=grouped, overlap=True, chunks=4,
            )

        sync = np.concatenate(run_spmd(P, prog_sync, backend=backend))
        over = np.concatenate(run_spmd(P, prog_overlap, backend=backend))
        assert sync.tobytes() == over.tobytes()
        np.testing.assert_array_equal(over, np.sort(keys))

    def test_small_partitions_clamp_to_sync(self, small_chunks):
        """Below the floor the effective chunk count drops — down to the
        synchronous path — and output stays correct."""
        N, P = 256, 4  # n = 64 -> K clamps to 1 even at the test floor
        keys = make_keys(N, seed=3)
        n = N // P

        def prog(c):
            c.tracer = Tracer(c.rank)
            out = spmd_bitonic_sort(
                c, keys[c.rank * n : (c.rank + 1) * n],
                overlap=True, chunks=4,
            )
            return out, c.tracer

        parts = run_spmd(P, prog, backend="threads")
        out = np.concatenate([p for p, _ in parts])
        np.testing.assert_array_equal(out, np.sort(keys))
        for _, tr in parts:
            assert tr.counters.get("coll.chunks", 0) == 0

    def test_default_floor_clamps_small_sorts(self):
        """At the production floor (4096 elements/chunk) a 1024-element
        partition never chunks: requesting overlap costs nothing."""
        keys = make_keys(4096, seed=5)
        report = sort(
            keys, P=4, backend="threads", trace=True,
            backend_options=BackendOptions(overlap=True, chunks=4),
        )
        np.testing.assert_array_equal(report.sorted_keys, np.sort(keys))
        assert report.phases.counters.get("coll.chunks", 0) == 0

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_front_door_overlap(self, backend, small_chunks):
        """``sort(..., BackendOptions(overlap=True))`` engages the
        pipeline (counters prove it) and matches the sync output."""
        keys = make_keys(4096, seed=5)
        base = sort(keys, P=4, backend=backend)
        over = sort(
            keys, P=4, backend=backend, trace=True,
            backend_options=BackendOptions(overlap=True, chunks=4),
        )
        assert base.sorted_keys.tobytes() == over.sorted_keys.tobytes()
        assert over.phases.counters.get("coll.overlapped", 0) > 0
        assert over.phases.counters.get("coll.chunks", 0) > 0

    def test_overlap_is_off_by_default(self):
        keys = make_keys(1024, seed=5)
        report = sort(keys, P=4, backend="threads", trace=True)
        assert report.phases.counters.get("coll.overlapped", 0) == 0


class TestNonblockingOps:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_out_of_order_wait(self, backend):
        """Two posted alltoallv ops waited in reverse order deliver the
        same payloads the blocking collective would."""

        def prog(c):
            first = [
                None if q == c.rank else np.full(2, 10 * c.rank + q,
                                                 dtype=np.int64)
                for q in range(c.size)
            ]
            second = [
                None if q == c.rank else np.full(3, 100 * c.rank + q,
                                                 dtype=np.int64)
                for q in range(c.size)
            ]
            op1 = c.ialltoallv(first)
            op2 = c.ialltoallv(second)
            r2 = op2.wait()
            r1 = op1.wait()
            total = 0
            for q in range(c.size):
                if q == c.rank:
                    continue
                assert r1[q].tolist() == [10 * q + c.rank] * 2
                assert r2[q].tolist() == [100 * q + c.rank] * 3
                total += int(r1[q].sum() + r2[q].sum())
            return total
        results = run_spmd(4, prog, backend=backend)
        assert len(results) == 4

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_isendrecv_ring(self, backend):
        def prog(c):
            op = c.isendrecv(
                np.array([c.rank], dtype=np.int64),
                dst=(c.rank + 1) % c.size,
                src=(c.rank - 1) % c.size,
            )
            got = op.wait()
            assert op.test()  # done stays done
            return int(got[0])

        results = run_spmd(4, prog, backend=backend)
        assert results == [3, 0, 1, 2]

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_pending_op_leak_raises(self, backend):
        """A job that posts and never waits fails loudly at teardown."""

        def prog(c):
            c.ialltoallv(
                [None if q == c.rank else np.arange(2) for q in range(c.size)]
            )
            return c.rank

        with pytest.raises(CommunicationError, match="pending-op leak"):
            run_spmd(2, prog, backend=backend)

    def test_procs_rejects_a_third_inflight_op(self):
        """The procs double-buffer arena supports two outstanding ops;
        a third post is a programming error, not a deadlock."""

        def prog(c):
            def buckets():
                return [
                    None if q == c.rank else np.arange(2)
                    for q in range(c.size)
                ]

            op1 = c.ialltoallv(buckets())
            op2 = c.ialltoallv(buckets())
            try:
                c.ialltoallv(buckets())
            except CommunicationError:
                op1.wait()
                op2.wait()
                return "refused"
            return "accepted"

        assert run_spmd(2, prog, backend="procs") == ["refused"] * 2

    def test_wait_is_idempotent(self):
        def prog(c):
            op = c.ialltoallv(
                [None if q == c.rank else np.arange(3) for q in range(c.size)]
            )
            a = op.wait()
            b = op.wait()
            assert a is b
            return c.pending_ops()

        assert run_spmd(2, prog, backend="threads") == [0, 0]


class TestFaultFallback:
    def test_armed_injector_forces_sync_path(self):
        """ReliableComm is not overlap-capable: with faults armed and
        overlap requested, the sort transparently runs synchronously —
        zero overlapped collectives, still correct."""
        from repro.faults.plan import FaultPlan

        keys = make_keys(2048, seed=9)
        report = sort(
            keys, P=4, backend="threads", trace=True,
            faults=FaultPlan(seed=7, drop=0.05),
            backend_options=BackendOptions(overlap=True, fused=False,
                                           grouped=False),
        )
        np.testing.assert_array_equal(report.sorted_keys, np.sort(keys))
        assert report.phases.counters.get("coll.overlapped", 0) == 0
        assert report.phases.counters.get("coll.chunks", 0) == 0


class TestWaitSplit:
    def test_classification_by_span_name(self):
        tr = Tracer(0)
        with tr.span("wait", "complete"):
            pass
        with tr.span("wait", "barrier"):
            pass
        with tr.span("wait", "sendrecv-recv"):
            pass
        split = tr.wait_split()
        assert split["transfer_wait"] >= 0.0
        assert split["queue_wait"] >= 0.0
        # Two transfer-wait names vs one queue name were recorded.
        assert split["transfer_wait"] > 0.0
        assert split["queue_wait"] > 0.0

    def test_nested_wait_is_exclusive(self):
        """A transfer-wait span nested in a queue-wait span leaves its
        parent's bucket — the buckets sum to the outer wall, once."""
        tr = Tracer(0)
        i = tr.begin("wait", "post")
        j = tr.begin("wait", "complete")
        tr.end(j)
        tr.end(i)
        split = tr.wait_split()
        outer = tr.spans[0][3] - tr.spans[0][2]
        total = split["transfer_wait"] + split["queue_wait"]
        assert total == pytest.approx(outer, rel=1e-6)

    def test_phase_report_carries_the_split(self, small_chunks):
        keys = make_keys(2048, seed=1)
        report = sort(
            keys, P=4, backend="threads", trace=True,
            backend_options=BackendOptions(overlap=True),
        )
        assert report.phases.measured_transfer_wait_us is not None
        assert report.phases.measured_queue_wait_us is not None
        d = report.phases.as_dict()["measured_wait_split"]
        assert d is not None and "transfer_wait_us" in d
        assert "measured wait split" in report.phases.describe()

    def test_untraced_report_has_no_split(self):
        rep = build_phase_report(tracers=None, P=4, n=256)
        assert rep.measured_transfer_wait_us is None
        assert rep.as_dict()["measured_wait_split"] is None


class TestPlannerAndService:
    def test_planner_prices_overlap_candidates(self):
        from repro.service import Planner

        d = Planner().plan(1 << 14)
        assert any(k.endswith("+ov") for k in d.candidates)
        # Default profile: overlap_efficiency=0 -> never chosen freely.
        assert d.overlap is False

    def test_forced_overlap_and_chunks(self):
        from repro.service import Planner

        d = Planner().plan(1 << 14, overlap=True, chunks=8)
        assert d.overlap is True and d.chunks == 8

    def test_fault_clamp_forces_overlap_off(self):
        from repro.service import Planner

        d = Planner().plan(1 << 12, faults=True, overlap=True)
        assert d.overlap is False and d.clamped

    def test_history_overlap_efficiency(self):
        from repro.service import BenchHistory

        h = BenchHistory([
            {"backend": "threads", "keys": 16384, "best_s": 0.010,
             "overlap": False},
            {"backend": "threads", "keys": 16384, "best_s": 0.008,
             "overlap": True},
        ])
        eff = h.overlap_efficiency("threads")
        assert eff == pytest.approx(0.2)
        assert h.overlap_efficiency("procs") is None

    def test_profile_spin_budget_reaches_the_pool(self):
        """A calibrated spin budget in the planner's host profile is
        passed to the worlds the service spawns."""
        from dataclasses import replace

        from repro.service import HostProfile, Planner, SortService

        profile = replace(HostProfile.default(), spin_budget=123)
        with SortService(planner=Planner(profile=profile)) as svc:
            assert svc.pool._options.spin_budget == 123
        with SortService() as svc:  # default profile: no override
            assert svc.pool._options is None

    def test_service_runs_overlap_requests(self):
        from repro.service import SortService

        keys = make_keys(4096, seed=2)
        with SortService() as svc:
            out = svc.sort(keys, backend="threads", P=4, overlap=True)
            np.testing.assert_array_equal(out.sorted_keys, np.sort(keys))
            assert out.decision.overlap is True
            rec = svc.report().requests[0]
            assert rec["overlap"] is True and rec["chunks"] == 4
