"""Tests for the fused sort+pack kernel (§4.3)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.layouts import blocked_layout, smart_layout
from repro.localsort.bitonic_merge_sort import sort_bitonic
from repro.localsort.fused import (
    compose_permutation,
    fused_sort_and_pack,
    sort_bitonic_with_perm,
)
from repro.remap.plan import build_remap_plan


def _bitonic(rng, n):
    vals = rng.integers(0, 1000, n)
    peak = int(rng.integers(0, n + 1))
    seq = np.concatenate([np.sort(vals[:peak]), np.sort(vals[peak:])[::-1]])
    return np.roll(seq, int(rng.integers(0, n)))


class TestSortWithPerm:
    @given(st.integers(0, 50_000), st.integers(1, 128))
    def test_perm_reproduces_sort(self, seed, n):
        rng = np.random.default_rng(seed)
        a = _bitonic(rng, n)
        out, perm = sort_bitonic_with_perm(a)
        np.testing.assert_array_equal(out, a[perm])
        np.testing.assert_array_equal(out, np.sort(a))
        # perm is a permutation.
        assert np.array_equal(np.sort(perm), np.arange(n))

    def test_descending(self, rng):
        a = _bitonic(rng, 64)
        out, perm = sort_bitonic_with_perm(a, ascending=False)
        np.testing.assert_array_equal(out, np.sort(a)[::-1])
        np.testing.assert_array_equal(out, a[perm])

    def test_matches_unpermuted_kernel(self, rng):
        a = _bitonic(rng, 256)
        np.testing.assert_array_equal(sort_bitonic_with_perm(a)[0],
                                      sort_bitonic(a))

    def test_trivial(self):
        out, perm = sort_bitonic_with_perm(np.array([7]))
        assert out.tolist() == [7] and perm.tolist() == [0]


class TestCompose:
    def test_composition_identity(self, rng):
        a = rng.integers(0, 100, 32)
        perm = rng.permutation(32)
        gather = rng.integers(0, 32, 10)
        np.testing.assert_array_equal(
            a[compose_permutation(perm, gather)], a[perm][gather]
        )


class TestFusedSortAndPack:
    def test_equals_two_step_pipeline(self, rng):
        """The fused single-gather outputs are identical to sort-then-pack."""
        N, P = 256, 8
        old = smart_layout(N, P, 6, 6)
        new = smart_layout(N, P, 6, 2)
        for r in range(P):
            plan = build_remap_plan(old, new, r)
            data = _bitonic(rng, N // P)
            kept_f, bufs_f = fused_sort_and_pack(data, plan)
            # Two-step reference.
            sorted_ = sort_bitonic(data)
            np.testing.assert_array_equal(kept_f, sorted_[plan.keep_src])
            assert set(bufs_f) == set(plan.send)
            for dst, idx in plan.send.items():
                np.testing.assert_array_equal(bufs_f[dst], sorted_[idx])

    def test_single_pass_volume(self, rng):
        """Everything is emitted exactly once."""
        N, P = 512, 8
        old = blocked_layout(N, P)
        new = smart_layout(N, P, 7, 7)
        plan = build_remap_plan(old, new, 3)
        data = _bitonic(rng, N // P)
        kept, bufs = fused_sort_and_pack(data, plan)
        total = kept.size + sum(b.size for b in bufs.values())
        assert total == N // P
        values = np.concatenate([kept] + list(bufs.values()))
        np.testing.assert_array_equal(np.sort(values), np.sort(data))
