"""The real-backend SPMD sample sort (`repro.runtime.sample_spmd`).

Cross-backend byte-equality is the core contract: concatenating the
per-rank output partitions in rank order must reproduce ``np.sort`` of
the whole input exactly, on threads, on procs, and in agreement with
the simulated comparator that serves as the executable spec — for
uniform, duplicate-heavy, and skewed key distributions alike.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.errors import CommunicationError
from repro.faults import FaultInjector, FaultPlan, ReliableComm
from repro.runtime import run_spmd, spmd_sample_sort
from repro.sorts import ParallelSampleSort
from repro.utils.rng import make_keys


def sample_sort_on(backend, keys, P, **kwargs):
    """Run the SPMD sample sort and return the rank-order concatenation."""
    n = keys.size // P

    def prog(c):
        return spmd_sample_sort(c, keys[c.rank * n:(c.rank + 1) * n], **kwargs)

    return np.concatenate(run_spmd(P, prog, backend=backend))


class TestByteEquality:
    @pytest.mark.parametrize("backend", ["threads", "procs"])
    @pytest.mark.parametrize("P", [2, 4])
    def test_matches_np_sort(self, backend, P):
        keys = make_keys(1 << 12, seed=81)
        out = sample_sort_on(backend, keys, P)
        np.testing.assert_array_equal(out, np.sort(keys))
        assert out.dtype == keys.dtype

    @pytest.mark.parametrize("P", [2, 4])
    def test_threads_procs_and_simulated_agree(self, P):
        keys = make_keys(1 << 11, seed=82)
        threads = sample_sort_on("threads", keys, P)
        procs = sample_sort_on("procs", keys, P)
        simulated = ParallelSampleSort().run(keys, P).sorted_keys
        np.testing.assert_array_equal(threads, procs)
        np.testing.assert_array_equal(threads, simulated)
        np.testing.assert_array_equal(threads, np.sort(keys))

    def test_single_rank_is_a_local_sort(self):
        keys = make_keys(1 << 10, seed=83)
        out = sample_sort_on("threads", keys, 1)
        np.testing.assert_array_equal(out, np.sort(keys))


class TestDistributions:
    """The §5.5 sensitivity: output partitions track the key distribution,
    the concatenation stays exact regardless."""

    @pytest.mark.parametrize("backend", ["threads", "procs"])
    def test_all_equal_keys(self, backend):
        # Every key identical: searchsorted(side="right") ships the whole
        # world to rank 0 and the others go home empty — still sorted.
        keys = np.full(1 << 10, 7, dtype=np.uint32)
        n = keys.size // 4

        def prog(c):
            return spmd_sample_sort(c, keys[c.rank * n:(c.rank + 1) * n])

        parts = run_spmd(4, prog, backend=backend)
        assert sum(p.size for p in parts) == keys.size
        np.testing.assert_array_equal(np.concatenate(parts), keys)

    def test_duplicate_heavy(self):
        rng = np.random.default_rng(84)
        keys = rng.choice(
            np.array([0, 1, 2, 0xFFFFFFFF], dtype=np.uint32), size=1 << 12
        )
        out = sample_sort_on("threads", keys, 4)
        np.testing.assert_array_equal(out, np.sort(keys))

    def test_skewed_distribution_unequal_partitions(self):
        # Heavily skewed toward small keys: rank 0's bucket dominates.
        rng = np.random.default_rng(85)
        keys = (rng.zipf(1.5, size=1 << 12) % (1 << 16)).astype(np.uint32)
        n = keys.size // 4

        def prog(c):
            return spmd_sample_sort(c, keys[c.rank * n:(c.rank + 1) * n])

        parts = run_spmd(4, prog, backend="threads")
        sizes = [p.size for p in parts]
        assert sum(sizes) == keys.size
        assert len(set(sizes)) > 1  # data-dependent, not blocked-equal
        np.testing.assert_array_equal(np.concatenate(parts), np.sort(keys))

    def test_presorted_and_reversed(self):
        base = np.arange(1 << 11, dtype=np.uint32)
        for keys in (base, base[::-1].copy()):
            out = sample_sort_on("threads", keys, 4)
            np.testing.assert_array_equal(out, np.sort(keys))


class TestContract:
    def test_ragged_partitions_rejected(self):
        def prog(c):
            local = np.arange(4 + c.rank, dtype=np.uint32)
            return spmd_sample_sort(c, local)

        with pytest.raises(CommunicationError, match="unequal partitions"):
            run_spmd(2, prog, backend="threads")

    def test_input_left_untouched(self):
        keys = make_keys(1 << 10, seed=86)
        before = keys.copy()

        def prog(c):
            n = keys.size // 2
            return spmd_sample_sort(c, keys[c.rank * n:(c.rank + 1) * n])

        run_spmd(2, prog, backend="threads")
        np.testing.assert_array_equal(keys, before)

    def test_composes_with_fault_transport(self):
        # sample sort speaks only allgather/alltoallv/barrier, all of
        # which ReliableComm retries — a lossy transport must converge
        # to the identical bytes.
        keys = make_keys(1 << 10, seed=87)

        def prog(c):
            rc = ReliableComm(c, FaultInjector(FaultPlan(seed=3, drop=0.1)))
            n = keys.size // 4
            return spmd_sample_sort(rc, keys[c.rank * n:(c.rank + 1) * n])

        parts = run_spmd(4, prog, backend="threads")
        np.testing.assert_array_equal(np.concatenate(parts), np.sort(keys))


class TestPropertyBased:
    @settings(max_examples=25, deadline=None)
    @given(
        keys=hnp.arrays(
            dtype=np.uint32,
            shape=st.integers(1, 64).map(lambda m: 4 * m),
            elements=st.integers(0, 2**32 - 1),
        )
    )
    def test_arbitrary_uint32_arrays(self, keys):
        out = sample_sort_on("threads", keys, 4)
        np.testing.assert_array_equal(out, np.sort(keys))
