"""0-1-principle certification of every sorting/merging kernel.

These tests upgrade "sorted some random arrays" to exhaustive correctness
over all 0-1 inputs — for comparison networks the two are equivalent
(Knuth's 0-1 principle).
"""

import numpy as np
import pytest

from repro.errors import ConfigurationError, VerificationError
from repro.localsort import radix_sort, sort_bitonic
from repro.localsort.bitonic_merge_sort import batched_bitonic_merge
from repro.network.sequential import batcher_sort, bitonic_sort_network
from repro.network.zero_one import (
    all_zero_one_bitonic_inputs,
    all_zero_one_inputs,
    certify_bitonic_merger,
    certify_sorter,
)
from repro.sorts import SmartBitonicSort


class TestEnumeration:
    def test_all_inputs_shape(self):
        m = all_zero_one_inputs(4)
        assert m.shape == (16, 4)
        assert m.min() == 0 and m.max() == 1
        # Row i encodes i.
        assert m[5].tolist() == [1, 0, 1, 0]

    def test_refuses_huge(self):
        with pytest.raises(ConfigurationError):
            all_zero_one_inputs(25)

    def test_bitonic_inputs_are_bitonic_and_complete(self):
        from repro.network.properties import is_bitonic

        m = all_zero_one_bitonic_inputs(6)
        for row in m:
            assert is_bitonic(row)
        # Every 0-1 bitonic sequence of length 6 appears: compare against
        # brute force over all 64 inputs.
        brute = [row for row in all_zero_one_inputs(6) if is_bitonic(row)]
        assert m.shape[0] == len(brute)


class TestCertifications:
    @pytest.mark.parametrize("N", [2, 4, 8, 16])
    def test_sequential_network_certified(self, N):
        assert certify_sorter(bitonic_sort_network, N) == 1 << N

    @pytest.mark.parametrize("N", [2, 4, 8])
    def test_batcher_certified(self, N):
        certify_sorter(batcher_sort, N)

    @pytest.mark.parametrize("N", [4, 8, 16])
    def test_radix_sort_certified(self, N):
        certify_sorter(lambda a: radix_sort(a, key_bits=1), N)

    @pytest.mark.parametrize("N,P", [(4, 2), (8, 2), (8, 4)])
    def test_smart_parallel_sort_certified(self, N, P):
        """The full parallel algorithm on a small simulated machine, run
        against every 0-1 input of length N.  (n = 1 key per processor is
        excluded: the smart layout needs lg n >= 1 — Lemma 1.)"""
        algo = SmartBitonicSort()
        certify_sorter(lambda a: algo.run(a, P).sorted_keys, N)

    @pytest.mark.parametrize("N", [2, 8, 32, 64])
    def test_bitonic_merge_sort_certified(self, N):
        assert certify_bitonic_merger(sort_bitonic, N) >= N * (N - 1)

    @pytest.mark.parametrize("N", [4, 16, 64])
    def test_butterfly_merge_certified(self, N):
        def merge(row):
            return batched_bitonic_merge(row[None, :], True, axis=1)[0]

        certify_bitonic_merger(merge, N)

    def test_counterexample_detected(self):
        """A deliberately broken 'sorter' is caught."""
        with pytest.raises(VerificationError, match="counterexample"):
            certify_sorter(lambda a: a, 3)

    def test_broken_merger_detected(self):
        with pytest.raises(VerificationError):
            certify_bitonic_merger(lambda a: a, 4)
