"""Tests for the approximate radix/sample predictors."""

import pytest

from repro.sorts import ParallelRadixSort, ParallelSampleSort
from repro.theory.predict import predict_smart
from repro.theory.predict_comparators import (
    crossover_keys_per_proc,
    predict_radix,
    predict_sample,
)
from repro.utils.rng import make_keys


def _busy(stats):
    return stats.mean_breakdown.total() - stats.mean_breakdown.times["wait"]


class TestRadixPrediction:
    @pytest.mark.parametrize("P,n", [(4, 4096), (8, 8192), (16, 8192)])
    def test_close_to_simulation_on_uniform_keys(self, P, n):
        stats = ParallelRadixSort().run(make_keys(P * n, seed=2), P).stats
        pred = predict_radix(P * n, P)
        assert _busy(stats) == pytest.approx(pred.total, rel=0.06)

    def test_single_proc(self):
        """P=1: the pass loop still runs (address/pack work happens; no
        transfer) and the prediction matches the simulation."""
        stats = ParallelRadixSort().run(make_keys(1 << 10, seed=1), 1).stats
        pred = predict_radix(1 << 10, 1)
        assert pred.times.get("transfer", 0.0) == 0.0
        assert _busy(stats) == pytest.approx(pred.total, rel=1e-9)


class TestSamplePrediction:
    @pytest.mark.parametrize("P,n", [(4, 4096), (8, 8192), (16, 8192)])
    def test_close_to_simulation_on_uniform_keys(self, P, n):
        stats = ParallelSampleSort().run(make_keys(P * n, seed=2), P).stats
        pred = predict_sample(P * n, P)
        assert _busy(stats) == pytest.approx(pred.total, rel=0.12)

    def test_cheapest_of_the_three(self):
        """Sample sort's prediction undercuts both bitonic and radix at the
        evaluation sizes — the Figure 5.7/5.8 'clear winner'."""
        for P in (16, 32):
            N = P * (1 << 17)
            assert predict_sample(N, P).total < predict_radix(N, P).total
            assert predict_sample(N, P).total < predict_smart(N, P).total


class TestCrossover:
    def test_p16_no_crossover(self):
        """Figure 5.7: on 16 processors bitonic wins through 1M keys/proc."""
        x = crossover_keys_per_proc(16, max_lgn=20)
        assert x is None or x > 1 << 20

    def test_p32_crossover_near_paper(self):
        """Figure 5.8: on 32 processors the crossover falls between 256K
        and 1M keys per processor."""
        x = crossover_keys_per_proc(32, max_lgn=22)
        assert x is not None
        assert (1 << 18) < x <= (1 << 20)
