"""Online adaptation (PR 9): the self-recalibrating planner loop.

Pins the contracts behind :mod:`repro.service.adapt` and the
queue-driven :class:`~repro.service.pool.WorldPool` autoscaler:

* correction factors never escape the ``[0.25, 4.0]`` clamp and decay
  toward the neutral 1.0 without traffic (hypothesis properties over
  arbitrary sample streams and clock skips);
* ``plan(adapt=False)`` and armed fault plans are *byte-identical* to a
  planner with no adapter at all — adaptation is opt-in per request and
  never leaks into the fault-clamped path;
* an unobserved key's adapted price equals its static price (adaptation
  moves decisions on evidence only), while sustained slow observations
  flip the decision away from the mispriced candidate;
* overlap efficiency is learned from traced sync/overlap wait-split
  pairs, and the whole adapter state round-trips through the
  ``repro-bitonic-profile/2`` schema (with /1 files warning-and-loading
  without adapted state);
* the pool prespawns on sustained backlog, shrinks on sustained quiet
  (one hysteresis violation in either direction must not thrash), and
  reaps TTL-expired idle worlds on acquire — not only on release.
"""

import json
import math
import warnings
from dataclasses import replace

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.faults import FaultPlan
from repro.service import (
    BenchHistory,
    HostProfile,
    Planner,
    RequestAdapter,
    SortService,
    WorldPool,
)
from repro.service.adapt import CLAMP, CorrectionState
from repro.service.profile import PROFILE_SCHEMA
from repro.trace.recorder import Tracer


class FakeClock:
    """Injectable monotonic clock for deterministic decay tests."""

    def __init__(self, t=0.0):
        self.t = t

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt


def make_adapter(**kw):
    kw.setdefault("clock", FakeClock())
    return RequestAdapter(HostProfile.default(), **kw)


# -- hypothesis properties: the clamp and the decay ---------------------


class TestCorrectionProperties:
    @settings(max_examples=50, deadline=None)
    @given(
        samples=st.lists(
            st.floats(min_value=1e-9, max_value=1e9,
                      allow_nan=False, allow_infinity=False),
            min_size=1, max_size=20,
        ),
        alpha=st.floats(min_value=0.05, max_value=1.0),
        dts=st.floats(min_value=0.0, max_value=1e5),
    )
    def test_factor_stays_inside_clamp(self, samples, alpha, dts):
        """No stream of measurements — however absurd — pushes a
        correction outside the BenchHistory bias clamp."""
        state = CorrectionState()
        now = 0.0
        for s in samples:
            now += dts
            value = state.update(s, now, alpha, decay_s=600.0)
            assert CLAMP[0] <= value <= CLAMP[1]
            assert CLAMP[0] <= state.effective(now, 600.0) <= CLAMP[1]

    @settings(max_examples=50, deadline=None)
    @given(
        value=st.floats(min_value=CLAMP[0], max_value=CLAMP[1]),
        age=st.floats(min_value=0.0, max_value=1e7),
        decay_s=st.floats(min_value=1.0, max_value=1e4),
    )
    def test_decay_moves_toward_neutral(self, value, age, decay_s):
        """The effective factor always lies between the stored EWMA and
        1.0, and the distance to 1.0 shrinks monotonically with age."""
        state = CorrectionState(value=value, stamp_s=0.0, updates=1)
        eff = state.effective(age, decay_s)
        lo, hi = min(value, 1.0), max(value, 1.0)
        assert lo - 1e-12 <= eff <= hi + 1e-12
        assert abs(eff - 1.0) <= abs(value - 1.0) + 1e-12
        later = state.effective(age + decay_s, decay_s)
        assert abs(later - 1.0) <= abs(eff - 1.0) + 1e-12

    def test_decay_reaches_neutral(self):
        """A key that stops seeing traffic relaxes to (numerically) 1.0:
        ten time constants leave < 0.01% of the correction."""
        state = CorrectionState(value=4.0, stamp_s=0.0, updates=3)
        assert state.effective(10 * 600.0, 600.0) == pytest.approx(
            1.0, abs=1e-3
        )

    def test_unobserved_state_is_neutral(self):
        assert CorrectionState().effective(123.0, 600.0) == 1.0


# -- byte-identity: adapt=False and armed faults ------------------------


class TestByteIdentity:
    def _trained(self):
        clock = FakeClock()
        adapter = RequestAdapter(HostProfile.default(), clock=clock)
        # Bias the adapter hard so any leak into the static path shows.
        for _ in range(6):
            adapter.observe(N=1 << 14, backend="threads", P=1,
                            algorithm="smart", measured_s=10.0)
            adapter.observe(N=1 << 14, backend="threads", P=4,
                            algorithm="smart", measured_s=1e-5)
        return Planner(adapter=adapter)

    @settings(max_examples=30, deadline=None)
    @given(
        n_log2=st.integers(min_value=8, max_value=18),
        warm=st.booleans(),
        overlap=st.sampled_from([None, True, False]),
    )
    def test_adapt_false_matches_plain_planner(self, n_log2, warm, overlap):
        plain = Planner().plan(1 << n_log2, warm=warm, overlap=overlap)
        frozen = self._trained().plan(
            1 << n_log2, warm=warm, overlap=overlap, adapt=False
        )
        assert frozen == plain

    @settings(max_examples=30, deadline=None)
    @given(n_log2=st.integers(min_value=8, max_value=18))
    def test_armed_faults_match_plain_planner(self, n_log2):
        """The fault clamp prices the clamped transport; live corrections
        measured the unclamped fast path and must not apply."""
        plain = Planner().plan(1 << n_log2, faults=True)
        adapted = self._trained().plan(1 << n_log2, faults=True)
        assert adapted == plain

    def test_unobserved_keys_price_statically(self):
        """With an attached but empty adapter every candidate's adapted
        price equals its static price — no gratuitous divergence."""
        d = Planner(adapter=make_adapter()).plan(1 << 14)
        assert d.static_candidates
        for name, static in d.static_candidates.items():
            assert d.candidates[name] == static
        plain = Planner().plan(1 << 14)
        assert (d.algorithm, d.backend, d.P) == (
            plain.algorithm, plain.backend, plain.P
        )


# -- the feedback loop actually moves decisions -------------------------


class TestAdaptedPlanning:
    def test_slow_observations_flip_the_decision(self):
        adapter = make_adapter()
        planner = Planner(backends=("threads",), adapter=adapter)
        before = planner.plan(1 << 14)
        key = (before.backend, before.P, before.algorithm)
        prefix = "" if before.algorithm == "smart" else f"{before.algorithm}:"
        static = before.static_candidates[
            f"{prefix}{before.backend}x{before.P}"
            + ("+ov" if before.overlap else "")
        ]
        # The chosen candidate keeps measuring 4x its static price.
        for _ in range(8):
            adapter.observe(N=1 << 14, backend=key[0], P=key[1],
                            algorithm=key[2], measured_s=static * 4.0)
        after = planner.plan(1 << 14)
        assert (after.backend, after.P, after.algorithm) != key
        assert after.source == "adapted"
        assert after.static_candidates  # both columns on the decision

    def test_explain_shows_both_columns(self):
        adapter = make_adapter()
        adapter.observe(N=1 << 14, backend="threads", P=1,
                        algorithm="smart", measured_s=10.0)
        text = Planner(adapter=adapter).plan(1 << 14).explain()
        assert "static" in text and "adapted" in text

    def test_observe_returns_clamped_factor(self):
        adapter = make_adapter(alpha=1.0)  # each sample fully adopted
        f = adapter.observe(N=1 << 14, backend="threads", P=1,
                            algorithm="smart", measured_s=1e6)
        assert f == CLAMP[1]
        assert adapter.correction("threads", 1, "smart") == CLAMP[1]
        assert adapter.correction("threads", 2, "smart") is None

    def test_correction_decays_to_neutral_without_traffic(self):
        clock = FakeClock()
        adapter = RequestAdapter(
            HostProfile.default(), decay_s=100.0, clock=clock
        )
        for _ in range(5):
            adapter.observe(N=1 << 14, backend="threads", P=1,
                            algorithm="smart", measured_s=100.0)
        assert adapter.correction("threads", 1, "smart") > 1.5
        clock.advance(100.0 * 50)
        assert adapter.correction("threads", 1, "smart") == pytest.approx(
            1.0, abs=1e-6
        )

    def test_bad_alpha_rejected(self):
        with pytest.raises(ConfigurationError):
            RequestAdapter(alpha=0.0)
        with pytest.raises(ConfigurationError):
            RequestAdapter(alpha=1.5)


# -- overlap efficiency from live wait splits ---------------------------


class TestOverlapLearning:
    def _observe_traced(self, adapter, *, overlap, wall_s=0.01):
        """One traced smart P=2 observation through the real service
        pipeline is heavyweight; feed the adapter a synthetic tracer
        shaped the way the service's rank tracers are.  Spans are
        ``[category, name, start_s, end_s, parent]``; ``wait`` spans
        named ``complete`` are transfer wait.  Both polarities total
        10 ms, but overlap cuts the wait 2 ms -> 0.5 ms."""
        wait_s = 0.0005 if overlap else 0.002
        tracer = Tracer(rank=0)
        tracer.spans.append(["local_sort", None, 0.0, 0.01 - wait_s, -1])
        tracer.spans.append(
            ["wait", "complete", 0.01 - wait_s, 0.01, -1]
        )
        adapter.observe(
            N=1 << 13, backend="threads", P=2, algorithm="smart",
            measured_s=wall_s, overlap=overlap, tracers=[tracer],
        )

    def test_needs_both_polarities(self):
        adapter = make_adapter()
        assert adapter.overlap_efficiency("threads") is None
        self._observe_traced(adapter, overlap=False)
        assert adapter.overlap_efficiency("threads") is None
        self._observe_traced(adapter, overlap=True)
        eff = adapter.overlap_efficiency("threads")
        assert eff is not None and 0.0 <= eff <= 1.0

    def test_efficiency_reflects_wait_reduction(self):
        adapter = make_adapter()
        for _ in range(4):
            self._observe_traced(adapter, overlap=False)
            self._observe_traced(adapter, overlap=True)
        # Overlap cut the measured wait 2000us -> 500us: ~75% removed.
        assert adapter.overlap_efficiency("threads") == pytest.approx(
            0.75, abs=0.05
        )
        assert adapter.stats()["overlap_efficiency"]["threads"] is not None


# -- persistence: profile schema /2 -------------------------------------


class TestPersistence:
    def _warm_adapter(self, clock):
        adapter = RequestAdapter(HostProfile.default(), clock=clock)
        for _ in range(4):
            adapter.observe(N=1 << 14, backend="threads", P=1,
                            algorithm="smart", measured_s=5.0)
            adapter.observe(N=1 << 14, backend="threads", P=2,
                            algorithm="smart", measured_s=1e-5)
        return adapter

    def test_state_blob_round_trip(self, tmp_path):
        clock = FakeClock(1000.0)
        adapter = self._warm_adapter(clock)
        path = str(tmp_path / "profile.json")
        adapter.profile.save(path, adapt=adapter.state_blob())

        profile, blob = HostProfile.load_with_state(path)
        assert blob is not None
        clock2 = FakeClock(7.0)  # a *fresh* monotonic origin
        restored = RequestAdapter.restore(blob, profile, clock=clock2)
        assert restored.updates == adapter.updates
        for key in (("threads", 1, "smart"), ("threads", 2, "smart")):
            assert restored.correction(*key) == pytest.approx(
                adapter.correction(*key), abs=1e-9
            )

    def test_saved_doc_is_schema_2(self, tmp_path):
        path = str(tmp_path / "profile.json")
        HostProfile.default().save(path, adapt={"updates": 0})
        doc = json.loads(open(path).read())
        assert doc["schema"] == PROFILE_SCHEMA
        assert "adapt" in doc

    def test_legacy_schema_1_warns_and_loads(self, tmp_path):
        path = str(tmp_path / "profile.json")
        HostProfile.default().save(path)
        doc = json.loads(open(path).read())
        doc["schema"] = "repro-bitonic-profile/1"
        doc.pop("adapt", None)
        with open(path, "w") as fh:
            json.dump(doc, fh)
        with pytest.warns(UserWarning, match="repro-bitonic-profile/1"):
            profile, blob = HostProfile.load_with_state(path)
        assert blob is None
        assert profile.cpus == HostProfile.default().cpus

    def test_unknown_schema_raises(self, tmp_path):
        path = str(tmp_path / "profile.json")
        HostProfile.default().save(path)
        doc = json.loads(open(path).read())
        doc["schema"] = "repro-bitonic-profile/99"
        with open(path, "w") as fh:
            json.dump(doc, fh)
        with pytest.raises(ConfigurationError):
            HostProfile.load(path)

    def test_unreadable_blob_yields_fresh_adapter(self):
        adapter = RequestAdapter.restore(
            {"corrections": [{"backend": "threads"}]},  # missing keys
            clock=FakeClock(),
        )
        assert adapter.updates == 0
        assert adapter.correction("threads", 1, "smart") is None

    def test_restore_resumes_decay_from_age(self):
        """Ages, not timestamps, cross the snapshot: a correction that
        was 50s old keeps decaying from 50s on the new clock."""
        blob = {
            "decay_s": 100.0,
            "updates": 1,
            "corrections": [{
                "backend": "threads", "P": 1, "algorithm": "smart",
                "value": 3.0, "age_s": 50.0, "updates": 1,
            }],
        }
        clock = FakeClock(5.0)
        adapter = RequestAdapter.restore(blob, clock=clock)
        expected = 1.0 + 2.0 * math.exp(-50.0 / 100.0)
        assert adapter.correction("threads", 1, "smart") == pytest.approx(
            expected, abs=1e-9
        )


# -- the autoscaling pool -----------------------------------------------


def make_pool(**kw):
    kw.setdefault("tick_interval_s", 0.0)  # drive ticks by hand
    kw.setdefault("autoscale", True)
    kw.setdefault("scale_up_after", 2)
    kw.setdefault("scale_down_after", 3)
    kw.setdefault("max_worlds_per_key", 3)
    return WorldPool(**kw)


class TestAutoscale:
    def test_sustained_backlog_prespawns(self):
        with make_pool() as pool:
            for _ in range(2):
                pool.note_arrival("threads", 2)
            pool._autoscale_tick()  # tick 1: hot, below hysteresis
            assert pool.scaled_up == 0
            pool._autoscale_tick()  # tick 2: prespawn
            assert pool.scaled_up == 2
            assert pool.idle_count() == 2
            assert pool.live_count("threads", 2) == 2

    def test_one_hot_tick_does_not_scale(self):
        with make_pool() as pool:
            pool.note_arrival("threads", 2)
            pool._autoscale_tick()
            pool.note_done("threads", 2)
            pool._autoscale_tick()  # backlog gone: hysteresis resets
            pool.note_arrival("threads", 2)
            pool._autoscale_tick()  # hot again, but the streak restarted
            assert pool.scaled_up == 0

    def test_prespawn_respects_world_cap(self):
        with make_pool(max_worlds_per_key=2) as pool:
            for _ in range(8):
                pool.note_arrival("threads", 2)
            pool._autoscale_tick()
            pool._autoscale_tick()
            assert pool.live_count("threads", 2) == 2
            # Still hot, but the cap holds on further ticks.
            pool._autoscale_tick()
            pool._autoscale_tick()
            assert pool.live_count("threads", 2) == 2

    def test_sustained_quiet_shrinks_one_per_tick(self):
        with make_pool() as pool:
            pool.prewarm("threads", 2, count=2)
            pool.note_arrival("threads", 2)
            pool.note_done("threads", 2)
            for _ in range(2):  # quiet ticks below hysteresis
                pool._autoscale_tick()
            assert pool.scaled_down == 0
            pool._autoscale_tick()  # tick 3 >= scale_down_after
            assert pool.scaled_down == 1
            pool._autoscale_tick()  # one more world per further tick
            assert pool.scaled_down == 2
            assert pool.idle_count() == 0
            assert pool.live_count("threads", 2) == 0

    def test_batch_drain_is_count_aware(self):
        """k batched requests share one dispatch: note_done(count=k)
        must clear all k arrivals, or pending grows without bound."""
        with make_pool() as pool:
            for _ in range(4):
                pool.note_arrival("threads", 2)
            pool.note_done("threads", 2, count=4)
            stats = pool.stats()
            assert stats["demand"]["threadsx2"]["pending"] == 0
            pool._autoscale_tick()
            pool._autoscale_tick()
            assert pool.scaled_up == 0

    def test_counters_reach_tracer(self):
        tracer = Tracer()
        with make_pool(tracer=tracer, scale_down_after=1) as pool:
            for _ in range(2):
                pool.note_arrival("threads", 2)
            pool._autoscale_tick()
            pool._autoscale_tick()
            pool.note_done("threads", 2, count=2)
            pool._autoscale_tick()
            assert tracer.counters.get("pool.scale_up", 0) >= 1
            assert tracer.counters.get("pool.scale_down", 0) >= 1

    def test_stats_exposes_demand(self):
        with make_pool() as pool:
            pool.note_arrival("threads", 1)
            pool.note_arrival("threads", 1)
            demand = pool.stats()["demand"]["threadsx1"]
            assert demand["pending"] == 2
            assert demand["rate_hz"] >= 0.0

    def test_bad_hysteresis_rejected(self):
        with pytest.raises(ConfigurationError):
            WorldPool(scale_up_after=0, tick_interval_s=0.0)
        with pytest.raises(ConfigurationError):
            WorldPool(max_worlds_per_key=0, tick_interval_s=0.0)


class TestPoolReaping:
    def test_acquire_reaps_expired_idle(self):
        """PR 9 fix: TTL used to bind only on release — a pool whose
        traffic pattern never released would hold expired worlds
        forever.  Acquire now sweeps first."""
        with WorldPool(idle_ttl_s=0.0, tick_interval_s=0.0) as pool:
            pool.prewarm("threads", 1, count=2)
            assert pool.idle_count() == 2
            world = pool.acquire("threads", 2)  # different shape
            try:
                assert pool.reaped == 2
                assert pool.idle_count() == 0
            finally:
                pool.release(world)

    def test_background_tick_reaps_without_traffic(self):
        import time as _time

        pool = WorldPool(idle_ttl_s=0.0, tick_interval_s=0.05)
        try:
            pool.prewarm("threads", 1, count=1)
            deadline = _time.monotonic() + 5.0
            while pool.idle_count() and _time.monotonic() < deadline:
                _time.sleep(0.05)
            assert pool.idle_count() == 0
            assert pool.reaped == 1
        finally:
            pool.close()


# -- service integration ------------------------------------------------


class TestServiceIntegration:
    def test_served_requests_feed_the_adapter(self):
        adapter = RequestAdapter(HostProfile.default())
        planner = Planner(
            backends=("threads",), candidate_P=(1, 2),
            history=BenchHistory(()), adapter=adapter,
        )
        service = SortService(
            planner=planner,
            pool=WorldPool(tick_interval_s=0.0),
            queue_depth=8, batch_max=2,
        )
        try:
            rng = np.random.default_rng(0)
            for _ in range(4):
                keys = rng.integers(0, 1 << 32, 1 << 12, dtype=np.uint32)
                out = service.sort(keys)
                assert bool(np.all(np.diff(out.sorted_keys) >= 0))
            report = service.report()
        finally:
            service.close()
        assert adapter.updates >= 4
        assert report.adapt["updates"] == adapter.updates
        assert report.adapt["factors"]  # at least the served key

    def test_fault_requests_do_not_train_the_adapter(self):
        adapter = RequestAdapter(HostProfile.default())
        planner = Planner(
            backends=("threads",), candidate_P=(1, 2),
            history=BenchHistory(()), adapter=adapter,
        )
        service = SortService(
            planner=planner,
            pool=WorldPool(tick_interval_s=0.0),
            queue_depth=8, batch_max=1,
        )
        try:
            rng = np.random.default_rng(1)
            keys = rng.integers(0, 1 << 32, 1 << 12, dtype=np.uint32)
            out = service.sort(keys, faults=FaultPlan(seed=3, drop=0.05),
                               P=2)
            assert bool(np.all(np.diff(out.sorted_keys) >= 0))
        finally:
            service.close()
        assert adapter.updates == 0

    def test_adapt_counter_reaches_trace(self):
        adapter = RequestAdapter(HostProfile.default())
        planner = Planner(
            backends=("threads",), candidate_P=(1,),
            history=BenchHistory(()), adapter=adapter,
        )
        service = SortService(
            planner=planner,
            pool=WorldPool(tick_interval_s=0.0),
            queue_depth=8, batch_max=1,
        )
        try:
            rng = np.random.default_rng(2)
            keys = rng.integers(0, 1 << 32, 1 << 12, dtype=np.uint32)
            out = service.sort(keys, trace=True)
        finally:
            service.close()
        assert out.tracers is not None
        lane = out.tracers[-1]  # the service-lane tracer, after the ranks
        assert lane.counters.get("adapt.updates", 0) >= 1
