"""The exception hierarchy: catchability contracts.

Downstream code relies on two properties: every library error derives from
:class:`ReproError`, and configuration mistakes are also ``ValueError``
(so generic argument-validation handlers catch them) while runtime
failures are ``RuntimeError`` / ``AssertionError`` respectively.
"""

import numpy as np
import pytest

from repro.errors import (
    AdmissionError,
    CommunicationError,
    ConfigurationError,
    CorruptPayloadError,
    FrameCorruptError,
    LayoutError,
    MemoryBudgetError,
    PeerFailedError,
    ReproError,
    RequestTimeoutError,
    ScheduleError,
    ServiceClosedError,
    ServiceError,
    ShardUnavailableError,
    SizeError,
    SpmdTimeoutError,
    VerificationError,
)


class TestHierarchy:
    @pytest.mark.parametrize("exc", [
        ConfigurationError, SizeError, LayoutError, ScheduleError,
        CommunicationError, PeerFailedError, SpmdTimeoutError,
        CorruptPayloadError, VerificationError, ServiceError,
        AdmissionError, MemoryBudgetError, ServiceClosedError,
        ShardUnavailableError, RequestTimeoutError, FrameCorruptError,
    ])
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    @pytest.mark.parametrize("exc", [
        ConfigurationError, SizeError, LayoutError, ScheduleError,
    ])
    def test_config_errors_are_value_errors(self, exc):
        assert issubclass(exc, ValueError)

    def test_communication_is_runtime_error(self):
        assert issubclass(CommunicationError, RuntimeError)

    def test_verification_is_assertion_error(self):
        assert issubclass(VerificationError, AssertionError)

    def test_full_hierarchy_shape(self):
        """The documented tree, asserted edge by edge."""
        tree = {
            ConfigurationError: ReproError,
            SizeError: ConfigurationError,
            LayoutError: ConfigurationError,
            ScheduleError: ConfigurationError,
            CommunicationError: ReproError,
            PeerFailedError: CommunicationError,
            SpmdTimeoutError: CommunicationError,
            CorruptPayloadError: CommunicationError,
            ServiceError: ReproError,
            AdmissionError: ServiceError,
            MemoryBudgetError: AdmissionError,
            ServiceClosedError: ServiceError,
            ShardUnavailableError: ServiceError,
            RequestTimeoutError: ServiceError,
            FrameCorruptError: ServiceError,
            VerificationError: ReproError,
        }
        for child, parent in tree.items():
            assert issubclass(child, parent), (child, parent)
        # Dual-inheritance contracts for generic handlers.
        assert issubclass(ConfigurationError, ValueError)
        assert issubclass(CommunicationError, RuntimeError)
        assert issubclass(SpmdTimeoutError, TimeoutError)
        assert issubclass(ServiceError, RuntimeError)
        assert issubclass(RequestTimeoutError, TimeoutError)
        assert issubclass(VerificationError, AssertionError)
        # The transport errors are *not* configuration mistakes.
        for exc in (PeerFailedError, SpmdTimeoutError, CorruptPayloadError,
                    ShardUnavailableError, RequestTimeoutError,
                    FrameCorruptError):
            assert not issubclass(exc, ValueError)
        # The two timeout species stay distinguishable: a generic
        # TimeoutError handler catches both, but neither is a subclass
        # of the other (an SPMD world deadline is not a client deadline).
        assert not issubclass(RequestTimeoutError, CommunicationError)
        assert not issubclass(SpmdTimeoutError, ServiceError)

    def test_network_errors_carry_diagnostics(self):
        su = ShardUnavailableError(
            "all down", shards={"s0": "circuit-open", "s1": "dead"},
            attempts=3,
        )
        assert su.shards == {"s0": "circuit-open", "s1": "dead"}
        assert su.attempts == 3
        rt = RequestTimeoutError("late", deadline_s=1.5, elapsed_s=1.6,
                                 stage="router")
        assert (rt.deadline_s, rt.elapsed_s, rt.stage) == (1.5, 1.6, "router")
        mb = MemoryBudgetError("too big", required_bytes=2048,
                               budget_bytes=1024)
        assert (mb.required_bytes, mb.budget_bytes) == (2048, 1024)
        assert mb.reason == "memory-budget"
        fc = FrameCorruptError("bad crc", frame_type=4, detail="crc")
        assert (fc.frame_type, fc.detail) == (4, "crc")

    def test_transport_errors_carry_diagnostics(self):
        pf = PeerFailedError("dead", rank=3, phase="phase-2",
                             retries=["round 0"])
        assert (pf.rank, pf.phase, pf.retries) == (3, "phase-2", ["round 0"])
        to = SpmdTimeoutError("late", rank=1, phase="run_spmd")
        assert (to.rank, to.phase, to.retries) == (1, "run_spmd", [])
        cp = CorruptPayloadError("mangled", rank=2, phase="phase-1", attempts=5)
        assert (cp.rank, cp.phase, cp.attempts) == (2, "phase-1", 5)


class TestOneHandlerCatchesEverything:
    def test_size_error_caught_as_repro_error(self):
        from repro.sorts import SmartBitonicSort

        with pytest.raises(ReproError):
            SmartBitonicSort().run(np.arange(100, dtype=np.uint32), 4)

    def test_schedule_error_caught_as_repro_error(self):
        from repro.layouts import smart_schedule

        with pytest.raises(ReproError):
            smart_schedule(8, 8)

    def test_layout_error_caught_as_repro_error(self):
        from repro.layouts import blocked_layout, bits_changed

        with pytest.raises(ReproError):
            bits_changed(blocked_layout(64, 4), blocked_layout(128, 8))

    def test_communication_error_caught_as_repro_error(self):
        from repro.machine import Machine, Message

        with pytest.raises(ReproError):
            Machine(2).exchange([Message(0, 0, np.arange(3))])

    def test_verification_error_caught_as_repro_error(self):
        from repro.sorts.base import verify_sorted

        with pytest.raises(ReproError):
            verify_sorted(np.array([2, 1]), np.array([2, 1]), "broken")
