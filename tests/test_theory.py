"""Tests for the analytical communication models (§3.4)."""

import pytest

from repro.errors import ConfigurationError
from repro.layouts.analysis import (
    communication_group,
    messages_smart_lower_bound,
)
from repro.model.logp import LogGPParams
from repro.theory import (
    best_algorithm,
    comm_time_table,
    counts_for,
    loggp_comm_time,
    logp_comm_time,
    predict_comm_per_key,
)
from repro.theory.counts import STRATEGIES


NET = LogGPParams(L=7.5, o=1.7, g=3.3, G=0.0094, P=64)


class TestCounts:
    def test_blocked(self):
        c = counts_for("blocked", 1 << 14, 16)
        n = (1 << 14) // 16
        assert c.remaps == 10
        assert c.volume == 10 * n
        assert c.messages == 10

    def test_cyclic_blocked(self):
        c = counts_for("cyclic-blocked", 1 << 14, 16)
        n = (1 << 14) // 16
        assert c.remaps == 8
        assert c.volume == 2 * (n - n // 16) * 4
        assert c.messages == 2 * 4 * 15

    def test_smart_large_n(self):
        c = counts_for("smart", 1 << 16, 16)
        assert c.remaps == 5
        assert c.volume == (1 << 12) * 4

    def test_smart_message_lower_bound(self):
        """§3.4.3's bound M >= 3(P-1) - lgP holds for the actual count."""
        for N, P in [(1 << 12, 8), (1 << 14, 16), (1 << 16, 32)]:
            c = counts_for("smart", N, P)
            assert c.messages >= messages_smart_lower_bound(P)

    def test_single_proc_all_zero(self):
        for strat in STRATEGIES:
            c = counts_for(strat, 64, 1)
            assert (c.remaps, c.volume, c.messages) == (0, 0, 0)

    def test_unknown_strategy(self):
        with pytest.raises(ConfigurationError):
            counts_for("psychic", 64, 4)

    def test_smart_dominates_on_R_and_V(self):
        """§3.4.2: smart is optimal on remaps and volume simultaneously."""
        for N, P in [(1 << 12, 8), (1 << 16, 16), (1 << 18, 32)]:
            smart = counts_for("smart", N, P)
            for other in ("blocked", "cyclic-blocked"):
                c = counts_for(other, N, P)
                assert smart.remaps <= c.remaps
                assert smart.volume <= c.volume

    def test_blocked_fewest_messages(self):
        """§3.4.3: the blocked strategy sends the fewest messages."""
        for N, P in [(1 << 12, 8), (1 << 16, 16)]:
            blocked = counts_for("blocked", N, P)
            for other in ("smart", "cyclic-blocked"):
                assert blocked.messages <= counts_for(other, N, P).messages


class TestTimes:
    def test_logp_time_formula(self):
        c = counts_for("smart", 1 << 14, 16)
        gp = max(NET.g, 2 * NET.o)
        expect = (NET.L + 2 * NET.o - gp) * c.remaps + gp * c.volume
        assert logp_comm_time(c, NET) == pytest.approx(expect)

    def test_loggp_time_formula(self):
        c = counts_for("smart", 1 << 14, 16)
        v_bytes = c.volume * 4
        expect = ((NET.L + 2 * NET.o) * c.remaps
                  + NET.G * (v_bytes - c.messages)
                  + NET.g * (c.messages - c.remaps))
        assert loggp_comm_time(c, NET) == pytest.approx(expect)

    def test_long_messages_much_cheaper(self):
        c = counts_for("smart", 1 << 18, 16)
        assert logp_comm_time(c, NET) > 10 * loggp_comm_time(c, NET)

    def test_per_key(self):
        c = counts_for("smart", 1 << 18, 16)
        assert predict_comm_per_key(c, NET) == pytest.approx(
            loggp_comm_time(c, NET) / c.n
        )


class TestCrossover:
    def test_smart_wins_under_logp(self):
        """Short messages: smart optimal on all metrics, so always best."""
        for N, P in [(1 << 12, 4), (1 << 16, 16), (1 << 20, 32)]:
            best, _ = best_algorithm(N, P, NET, long_messages=False)
            assert best == "smart"

    def test_blocked_wins_tiny_p_long_messages(self):
        """§3.4.3: for P=2 the blocked strategy (one message per step) has
        the best long-message communication time."""
        best, table = best_algorithm(1 << 20, 2, NET, long_messages=True)
        assert best == "blocked"
        assert table["blocked"] <= table["smart"]

    def test_smart_wins_moderate_p_long_messages(self):
        best, _ = best_algorithm(1 << 20, 32, NET, long_messages=True)
        assert best == "smart"

    def test_table_has_all_strategies(self):
        table = comm_time_table(1 << 14, 8, NET)
        assert set(table) == set(STRATEGIES)
        assert all(v > 0 for v in table.values())


class TestCommunicationGroup:
    def test_group_arithmetic(self):
        assert communication_group(5, 2, 16) == (4, 4)
        assert communication_group(3, 0, 16) == (3, 1)
        assert communication_group(15, 4, 16) == (0, 16)

    def test_rejects_oversized_group(self):
        with pytest.raises(ConfigurationError):
            communication_group(0, 5, 16)

    def test_rejects_bad_proc(self):
        with pytest.raises(ConfigurationError):
            communication_group(16, 2, 16)
