"""Tests for the remap machinery: masks, plans, and execution."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import CommunicationError, LayoutError
from repro.layouts import (
    bits_changed,
    blocked_layout,
    communication_group,
    cyclic_layout,
    smart_layout,
    smart_schedule,
)
from repro.machine import Machine
from repro.remap import (
    build_remap_plan,
    changed_local_bits,
    pack_mask,
    perform_remap,
    unpack_mask,
)


class TestMasks:
    def test_changed_bits_count_equals_bits_changed(self):
        old = blocked_layout(256, 16)
        new = smart_layout(256, 16, 5, 5)
        assert len(changed_local_bits(old, new)) == bits_changed(old, new)

    def test_blocked_to_cyclic_masks(self):
        old = blocked_layout(256, 16)
        new = cyclic_layout(256, 16)
        # All 4 local bits become processor bits (lg n = lg P = 4).
        assert pack_mask(old, new) == "SSSS"
        assert unpack_mask(old, new) == "SSSS"

    def test_identity_mask_unshaded(self):
        lay = blocked_layout(256, 16)
        assert pack_mask(lay, lay) == "...."

    def test_first_smart_remap_mask(self):
        """Figure 3.4's remap 0 changes exactly one bit."""
        old = blocked_layout(256, 16)
        new = smart_layout(256, 16, 5, 5)
        assert pack_mask(old, new).count("S") == 1

    def test_mismatched_machines_rejected(self):
        with pytest.raises(LayoutError):
            pack_mask(blocked_layout(64, 4), blocked_layout(64, 8))


class TestRemapPlan:
    def test_plan_partitions_slots(self):
        old = blocked_layout(256, 16)
        new = cyclic_layout(256, 16)
        for r in range(16):
            plan = build_remap_plan(old, new, r)
            sent = plan.elements_sent
            assert sent + plan.keep_src.size == 16
            # All slot indices used exactly once on each side.
            srcs = np.concatenate(
                [plan.keep_src] + [idx for idx in plan.send.values()]
            )
            assert np.array_equal(np.sort(srcs), np.arange(16))
            dsts = np.concatenate(
                [plan.keep_dst] + [idx for idx in plan.recv.values()]
            )
            assert np.array_equal(np.sort(dsts), np.arange(16))

    def test_lemma4_group_structure(self):
        """Processors communicate in groups of 2**bits_changed consecutive
        ranks, sending n / 2**bc to every other group member."""
        N, P = 1024, 16
        sched = smart_schedule(N, P)
        layouts = [sched.initial_layout] + [ph.layout for ph in sched.phases]
        n = N // P
        for old, new in zip(layouts[:-1], layouts[1:]):
            bc = bits_changed(old, new)
            for r in range(P):
                plan = build_remap_plan(old, new, r)
                first, size = communication_group(r, bc, P)
                expect_peers = set(range(first, first + size)) - {r}
                assert set(plan.send) == expect_peers
                for idx in plan.send.values():
                    assert idx.size == n >> bc
                assert plan.keep_src.size == n >> bc
                assert set(plan.recv) == expect_peers

    def test_send_recv_are_mirror_images(self):
        """What r plans to send q is exactly what q plans to receive
        from r (same count, matching addresses)."""
        old = blocked_layout(512, 8)
        new = smart_layout(512, 8, 7, 7)
        plans = [build_remap_plan(old, new, r) for r in range(8)]
        for r in range(8):
            for q, send_idx in plans[r].send.items():
                recv_idx = plans[q].recv[r]
                assert send_idx.size == recv_idx.size
                # The absolute addresses agree element by element.
                sent_abs = old.to_absolute(np.int64(r), send_idx)
                got_abs = new.to_absolute(np.int64(q), recv_idx)
                np.testing.assert_array_equal(sent_abs, got_abs)

    def test_mismatched_machines_rejected(self):
        with pytest.raises(LayoutError):
            build_remap_plan(blocked_layout(64, 4), blocked_layout(128, 8), 0)


class TestPerformRemap:
    def _trace_setup(self, N, P):
        """Partitions where every value equals its absolute address, so any
        misrouting is immediately visible."""
        machine = Machine(P)
        lay = blocked_layout(N, P)
        parts = [lay.absolute_addresses(r).astype(np.uint32) for r in range(P)]
        return machine, lay, parts

    @pytest.mark.parametrize("mode", ["long", "short"])
    def test_data_lands_by_layout(self, mode):
        N, P = 512, 8
        machine, lay, parts = self._trace_setup(N, P)
        new = cyclic_layout(N, P)
        parts = perform_remap(machine, parts, lay, new, mode=mode)
        for r in range(P):
            np.testing.assert_array_equal(
                parts[r], new.absolute_addresses(r).astype(np.uint32)
            )

    def test_chain_through_smart_schedule(self):
        N, P = 1024, 8
        machine, lay, parts = self._trace_setup(N, P)
        for ph in smart_schedule(N, P).phases:
            parts = perform_remap(machine, parts, lay, ph.layout)
            lay = ph.layout
            for r in range(P):
                np.testing.assert_array_equal(
                    parts[r], lay.absolute_addresses(r).astype(np.uint32)
                )

    def test_counts_volume_and_messages(self):
        N, P = 1024, 8
        machine, lay, parts = self._trace_setup(N, P)
        sched = smart_schedule(N, P)
        for ph in sched.phases:
            parts = perform_remap(machine, parts, lay, ph.layout)
            lay = ph.layout
        st = machine.stats(N // P)
        assert st.remaps == sched.num_remaps
        assert st.volume_per_proc == sched.volume_per_processor()
        assert st.messages_per_proc == sched.messages_per_processor()

    def test_fused_charges_no_pack_unpack(self):
        N, P = 256, 4
        machine, lay, parts = self._trace_setup(N, P)
        perform_remap(machine, parts, lay, cyclic_layout(N, P), fused=True)
        st = machine.stats(N // P)
        assert st.mean_breakdown.times["unpack"] == 0.0
        assert st.mean_breakdown.times["pack"] > 0.0  # the fusion surcharge

    def test_unfused_charges_both(self):
        N, P = 256, 4
        machine, lay, parts = self._trace_setup(N, P)
        perform_remap(machine, parts, lay, cyclic_layout(N, P), fused=False)
        st = machine.stats(N // P)
        assert st.mean_breakdown.times["pack"] > 0.0
        assert st.mean_breakdown.times["unpack"] > 0.0

    def test_short_mode_skips_packing(self):
        N, P = 256, 4
        machine, lay, parts = self._trace_setup(N, P)
        perform_remap(machine, parts, lay, cyclic_layout(N, P), mode="short")
        st = machine.stats(N // P)
        assert st.mean_breakdown.times["pack"] == 0.0
        assert st.mean_breakdown.times["unpack"] == 0.0

    def test_short_fused_rejected(self):
        N, P = 256, 4
        machine, lay, parts = self._trace_setup(N, P)
        with pytest.raises(CommunicationError):
            perform_remap(machine, parts, lay, cyclic_layout(N, P),
                          mode="short", fused=True)

    def test_wrong_partition_count_rejected(self):
        N, P = 256, 4
        machine, lay, parts = self._trace_setup(N, P)
        with pytest.raises(CommunicationError):
            perform_remap(machine, parts[:-1], lay, cyclic_layout(N, P))

    def test_wrong_partition_size_rejected(self):
        N, P = 256, 4
        machine, lay, parts = self._trace_setup(N, P)
        parts[0] = parts[0][:-1]
        with pytest.raises(CommunicationError):
            perform_remap(machine, parts, lay, cyclic_layout(N, P))

    @given(st.integers(0, 10_000))
    def test_random_values_preserved(self, seed):
        """A remap is a permutation: the multiset of values is unchanged."""
        N, P = 256, 8
        rng = np.random.default_rng(seed)
        machine = Machine(P)
        vals = rng.integers(0, 100, N).astype(np.uint32)
        lay = blocked_layout(N, P)
        parts = [vals[lay.absolute_addresses(r)] for r in range(P)]
        new = smart_layout(N, P, 6, 6)
        out = perform_remap(machine, parts, lay, new)
        np.testing.assert_array_equal(
            np.sort(np.concatenate(out)), np.sort(vals)
        )
