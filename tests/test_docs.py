"""Documentation consistency: DESIGN.md's inventory and EXPERIMENTS.md's
experiment ids must reference things that actually exist."""

import re
from pathlib import Path

import pytest

from repro.harness.experiments import EXPERIMENTS

ROOT = Path(__file__).resolve().parents[1]


def _read(name: str) -> str:
    path = ROOT / name
    if not path.exists():
        pytest.skip(f"{name} not present in this checkout")
    return path.read_text()


class TestDesignDoc:
    def test_module_map_paths_exist(self):
        """Every file named in the fenced module-map block exists under
        src/repro (as a basename — the block nests directories)."""
        text = _read("DESIGN.md")
        blocks = re.findall(r"```(.*?)```", text, re.S)
        assert blocks, "DESIGN.md lost its module-map code block"
        existing = {p.name for p in (ROOT / "src" / "repro").rglob("*.py")}
        for block in blocks:
            for name in re.findall(r"([a-z_]+\.py)\b", block):
                assert name in existing, f"DESIGN.md references missing {name}"

    def test_bench_targets_exist(self):
        text = _read("DESIGN.md")
        for match in re.finditer(r"benchmarks/(bench_[a-z0-9_]+\.py)", text):
            assert (ROOT / "benchmarks" / match.group(1)).exists(), match.group(0)

    def test_experiment_ids_registered(self):
        text = _read("DESIGN.md")
        for ident in re.findall(r"`(table5\.\d|figure5\.\d)`", text):
            assert ident in EXPERIMENTS


class TestExperimentsDoc:
    def test_covers_every_table_and_figure(self):
        text = _read("EXPERIMENTS.md")
        for i in (1, 2, 3, 4):
            assert f"Table 5.{i}" in text
        for i in range(1, 9):
            assert f"Figure 5.{i}" in text or f"Fig 5.{i}" in text

    def test_records_verdicts(self):
        text = _read("EXPERIMENTS.md")
        assert "reproduced" in text
        assert "crossover" in text


class TestReadme:
    def test_mentions_all_deliverable_docs(self):
        text = _read("README.md")
        for doc in ("DESIGN.md", "EXPERIMENTS.md"):
            assert doc in text

    def test_quickstart_names_real_api(self):
        import repro

        text = _read("README.md")
        for name in ("SmartBitonicSort", "CyclicBlockedBitonicSort", "make_keys"):
            assert name in text
            assert hasattr(repro, name)

    def test_examples_listed_exist(self):
        text = _read("README.md")
        for match in re.finditer(r"`([a-z_]+\.py)`", text):
            name = match.group(1)
            if (ROOT / "examples" / name).exists() or name in (
                "quickstart.py",
            ):
                continue
            # Allow non-example .py references (none currently).
            assert (ROOT / "examples" / name).exists(), f"README lists {name}"
