"""Tests for sequence predicates (bitonicity etc.)."""

import numpy as np
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.network.properties import (
    count_circular_direction_changes,
    is_bitonic,
    is_monotonic,
    is_sorted_ascending,
    is_sorted_descending,
)


class TestSortedPredicates:
    def test_ascending(self):
        assert is_sorted_ascending(np.array([1, 2, 2, 5]))
        assert not is_sorted_ascending(np.array([1, 3, 2]))

    def test_descending(self):
        assert is_sorted_descending(np.array([5, 5, 3, 1]))
        assert not is_sorted_descending(np.array([3, 1, 2]))

    def test_monotonic(self):
        assert is_monotonic(np.array([1, 2, 3]))
        assert is_monotonic(np.array([3, 2, 1]))
        assert not is_monotonic(np.array([1, 3, 2]))

    def test_trivial_sequences(self):
        for seq in (np.array([]), np.array([7]), np.array([7, 7])):
            assert is_sorted_ascending(seq)
            assert is_sorted_descending(seq)
            assert is_bitonic(seq)


class TestBitonic:
    def test_paper_examples(self):
        # The two example sequences from §2.1.1.
        assert is_bitonic(np.array([2, 3, 4, 5, 6, 7, 8, 8, 7, 5, 3, 2, 1]))
        assert is_bitonic(np.array([6, 7, 8, 8, 7, 5, 3, 2, 1, 2, 3, 4, 5]))

    def test_monotone_is_bitonic(self):
        assert is_bitonic(np.arange(10))
        assert is_bitonic(np.arange(10)[::-1])

    def test_constant_is_bitonic(self):
        assert is_bitonic(np.full(8, 3))
        assert count_circular_direction_changes(np.full(8, 3)) == 0

    def test_non_bitonic(self):
        assert not is_bitonic(np.array([1, 3, 1, 3]))
        assert not is_bitonic(np.array([0, 5, 2, 7, 1, 6]))

    def test_direction_change_counts(self):
        assert count_circular_direction_changes(np.array([1, 5, 2])) == 2
        assert count_circular_direction_changes(np.array([1, 3, 1, 3])) == 4

    @given(
        st.integers(2, 64),
        st.integers(0, 63),
        st.integers(0, 1_000_000),
    )
    def test_rotations_of_bitonic_stay_bitonic(self, n, shift, seed):
        rng = np.random.default_rng(seed)
        up = np.sort(rng.integers(0, 100, n))
        down = np.sort(rng.integers(0, 100, n))[::-1]
        seq = np.concatenate([up, down])
        assert is_bitonic(np.roll(seq, shift % seq.size))

    @given(hnp.arrays(np.int64, st.integers(1, 32), elements=st.integers(-50, 50)))
    def test_count_is_even(self, a):
        assert count_circular_direction_changes(a) % 2 == 0

    @given(hnp.arrays(np.int64, st.integers(1, 32), elements=st.integers(-50, 50)))
    def test_bitonic_iff_some_rotation_is_rise_then_fall(self, a):
        """Cross-check the circular-count test against the literal
        Definition 1: some cyclic shift is increasing-then-decreasing."""
        n = a.size

        def rise_then_fall(seq):
            for i in range(len(seq)):
                if not (np.all(np.diff(seq[: i + 1]) >= 0)
                        and np.all(np.diff(seq[i:]) <= 0)):
                    continue
                return True
            return False

        literal = any(rise_then_fall(np.roll(a, -s)) for s in range(n))
        assert is_bitonic(a) == literal
