"""Tests for the command-line interface."""

import pytest

from repro.harness.cli import main


class TestExperimentCommand:
    def test_list(self, capsys):
        assert main(["experiment", "list"]) == 0
        assert "table5.1" in capsys.readouterr().out

    def test_backcompat_bare_id(self, capsys):
        assert main(["list"]) == 0
        assert "figure5.8" in capsys.readouterr().out

    def test_runs_cheap_experiment(self, capsys):
        assert main(["bitonic-min"]) == 0
        assert "Algorithm 2" in capsys.readouterr().out

    def test_unknown_experiment_raises(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            main(["experiment", "table99"])


class TestSortCommand:
    def test_smart_sort(self, capsys):
        assert main(["sort", "--keys", "1024", "--procs", "8"]) == 0
        out = capsys.readouterr().out
        assert "sorted and verified" in out
        assert "remaps R = " in out

    def test_short_messages(self, capsys):
        assert main(["sort", "--keys", "512", "--procs", "4",
                     "--messages", "short"]) == 0
        assert "smart[short-msg" in capsys.readouterr().out

    def test_other_algorithms(self, capsys):
        for algo in ("cyclic-blocked", "blocked-merge", "radix", "sample"):
            assert main(["sort", "--keys", "512", "--procs", "4",
                         "--algorithm", algo]) == 0

    def test_unknown_algorithm(self, capsys):
        assert main(["sort", "--keys", "512", "--procs", "4",
                     "--algorithm", "bogo"]) == 2

    def test_distribution_option(self, capsys):
        assert main(["sort", "--keys", "512", "--procs", "4",
                     "--distribution", "low-entropy"]) == 0


class TestOtherCommands:
    def test_schedule(self, capsys):
        assert main(["schedule", "--keys", "256", "--procs", "16"]) == 0
        out = capsys.readouterr().out
        assert "bits_changed=1" in out
        assert "R0" in out

    def test_predict(self, capsys):
        assert main(["predict", "--keys", "1048576", "--procs", "32"]) == 0
        out = capsys.readouterr().out
        assert "smart" in out and "blocked-merge" in out

    def test_fft(self, capsys):
        assert main(["fft", "--points", "1024", "--procs", "8"]) == 0
        assert "verified against np.fft.fft" in capsys.readouterr().out

    def test_gantt(self, capsys):
        assert main(["gantt", "--keys", "4096", "--procs", "4",
                     "--width", "40"]) == 0
        out = capsys.readouterr().out
        assert "P0" in out and "makespan" in out

    def test_gantt_unknown_algorithm(self, capsys):
        assert main(["gantt", "--keys", "4096", "--procs", "4",
                     "--algorithm", "x"]) == 2

    def test_gantt_column_sort(self, capsys):
        assert main(["gantt", "--keys", "8192", "--procs", "4",
                     "--algorithm", "column", "--width", "40"]) == 0

    def test_no_command_prints_help(self, capsys):
        assert main(["--help"][:0]) == 2  # empty argv
        assert "repro-bitonic" in capsys.readouterr().out


class TestServiceCommands:
    def test_submit_plans_and_sorts(self, capsys):
        assert main(["submit", "--keys", "2048"]) == 0
        out = capsys.readouterr().out
        assert "plan:" in out and "verified" in out

    def test_submit_forced_backend_and_trace(self, tmp_path, capsys):
        trace = tmp_path / "req.json"
        assert main([
            "submit", "--keys", "2048", "--backend", "threads",
            "--procs", "2", "--trace", str(trace),
        ]) == 0
        assert trace.exists()
        assert "threads x 2" in capsys.readouterr().out

    def test_serve_small_soak_no_leaks(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main([
            "serve", "--requests", "8", "--sizes", "1024",
            "--backends", "threads", "--trace-every", "4",
            "--traces-dir", str(tmp_path / "traces"),
        ]) == 0
        out = capsys.readouterr().out
        assert "soak ok" in out and "zero leaks" in out
        assert (tmp_path / "traces").is_dir()
