"""Tests for key-value (record) sorting."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.records import sort_records
from repro.sorts import (
    BlockedMergeBitonicSort,
    CyclicBlockedBitonicSort,
    ParallelRadixSort,
    ParallelSampleSort,
    SmartBitonicSort,
)
from repro.utils.rng import make_keys

ALL = [SmartBitonicSort, CyclicBlockedBitonicSort, BlockedMergeBitonicSort,
       ParallelRadixSort, ParallelSampleSort]


@pytest.mark.parametrize("sort_cls", ALL)
class TestRecordSortAllAlgorithms:
    def test_payloads_follow_keys(self, sort_cls, rng):
        keys = make_keys(512, seed=31)
        values = rng.integers(0, 10**9, 512)
        res = sort_records(sort_cls(), keys, values, P=8, verify=True)
        assert np.array_equal(res.sorted_keys, np.sort(keys))
        # Spot-check the pairing beyond verify's own assertion.
        pairs = {int(k): set() for k in keys}
        for k, v in zip(keys.tolist(), values.tolist()):
            pairs[k].add(v)
        for k, v in zip(res.sorted_keys.tolist(), res.sorted_values.tolist()):
            assert v in pairs[k]

    def test_duplicate_keys_stable(self, sort_cls, rng):
        """Equal keys keep their original relative order (the composite
        breaks ties by origin index)."""
        keys = np.repeat(np.arange(8, dtype=np.uint32), 32)
        rng.shuffle(keys)
        values = np.arange(256)
        res = sort_records(sort_cls(), keys, values, P=4, verify=True)
        # Within each key group, payload origins must appear in increasing
        # original position.
        for k in range(8):
            group = res.sorted_values[res.sorted_keys == k]
            origins = [int(np.nonzero((keys == k) & (values == v))[0][0])
                       for v in group.tolist()]
            assert origins == sorted(origins)


class TestRecordSortEdgeCases:
    def test_structured_payloads(self, rng):
        keys = make_keys(128, seed=3)
        values = rng.normal(size=(128, 3))  # vector payloads
        res = sort_records(SmartBitonicSort(), keys, values, P=4, verify=True)
        assert res.sorted_values.shape == (128, 3)

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ConfigurationError):
            sort_records(SmartBitonicSort(), make_keys(64), np.zeros(32), P=4)

    def test_2d_keys_rejected(self):
        with pytest.raises(ConfigurationError):
            sort_records(SmartBitonicSort(), np.zeros((4, 4), dtype=np.uint32),
                         np.zeros(16), P=4)

    def test_float_keys_rejected(self):
        with pytest.raises(ConfigurationError):
            sort_records(SmartBitonicSort(), np.zeros(16), np.zeros(16), P=4)

    def test_oversized_keys_rejected(self):
        keys = np.full(16, 1 << 31, dtype=np.uint64)
        with pytest.raises(ConfigurationError, match="2\\*\\*31"):
            sort_records(SmartBitonicSort(), keys, np.zeros(16), P=4)

    def test_volume_charged_at_8_bytes(self):
        """The composite is what travels: per-element wire cost doubles."""
        keys = make_keys(2048, seed=5)
        values = np.zeros(2048)
        rec = sort_records(SmartBitonicSort(fused=False), keys, values, P=8)
        plain = SmartBitonicSort(fused=False).run(keys, 8)
        assert rec.stats.volume_per_proc == plain.stats.volume_per_proc
        assert (rec.stats.mean_breakdown.times["transfer"]
                > plain.stats.mean_breakdown.times["transfer"])

    def test_original_algorithm_untouched(self):
        algo = SmartBitonicSort()
        before = (algo.key_bits, algo.spec.key_bytes)
        sort_records(algo, make_keys(128), np.zeros(128), P=4)
        assert (algo.key_bits, algo.spec.key_bytes) == before
