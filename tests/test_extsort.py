"""The out-of-core tier: spill-to-disk external sort.

The contract under test, layer by layer:

* **byte equality** — :func:`repro.extsort.external_sort` returns
  exactly ``np.sort(keys)`` at every budget that forces one, two, or
  many merge passes, on uniform, duplicate-heavy, and skewed inputs;
* **budget honesty** — the self-accounted peak working set stays within
  the declared memory budget even when the input is 8x larger than it;
* **crash safety** — a SIGKILLed sort leaves a pid-named spill
  directory that the orphan sweep reclaims, while directories owned by
  live processes are never touched;
* **admission** — the service degrades over-budget requests to the
  external path (counted in the report) and rejects requests whose
  spill footprint cannot fit the disk budget with a typed
  :class:`~repro.errors.MemoryBudgetError`;
* **the third regime** — the planner prices ``external`` alongside the
  in-memory algorithms only with measured disk evidence, degrades on a
  budget, and refuses faults out of core.
"""

import os
import signal
import subprocess
import sys
import textwrap
import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.errors import ConfigurationError, MemoryBudgetError
from repro.extsort import (
    INMEM_WORKING_SET_FACTOR,
    SpillDir,
    estimate_spill_bytes,
    external_sort,
    inmem_working_set_bytes,
    live_spill_dirs,
    sweep_orphaned_spill_dirs,
)
from repro.utils.rng import make_keys


def _check(keys, budget, **kwargs):
    out, report = external_sort(keys, budget, **kwargs)
    assert out.tobytes() == np.sort(keys).tobytes()
    assert out.dtype == keys.dtype
    return report


class TestByteEquality:
    def test_single_merge_pass(self, tmp_path):
        keys = make_keys(1 << 12, seed=3)
        # budget = nbytes/4 -> chunks of budget/4 bytes -> 16 runs,
        # comfortably under the default fan-in: one merge pass.
        report = _check(keys, keys.nbytes // 4, spill_root=str(tmp_path))
        assert report.runs == 16
        assert report.merge_passes == 1
        assert report.spill_bytes >= keys.nbytes
        assert report.n == keys.size

    def test_two_merge_passes(self, tmp_path):
        keys = make_keys(1 << 12, seed=4)
        # 16 runs at fan-in 4: one intermediate pass to 4 runs, then the
        # final bucket merge.
        report = _check(
            keys, keys.nbytes // 4, fan_in=4, spill_root=str(tmp_path)
        )
        assert report.merge_passes == 2

    def test_many_merge_passes(self, tmp_path):
        keys = make_keys(1 << 12, seed=5)
        # fan-in 2 cascades 16 -> 8 -> 4 -> 2 -> output.
        report = _check(
            keys, keys.nbytes // 4, fan_in=2, spill_root=str(tmp_path)
        )
        assert report.merge_passes >= 4

    @pytest.mark.parametrize("n", [1, 2, 3, 100, 1000, 100_001])
    def test_non_power_of_two_sizes(self, n, tmp_path):
        keys = make_keys(max(n, 1), seed=n)[:n]
        _check(keys, 4096, spill_root=str(tmp_path))

    @pytest.mark.parametrize("dtype", [np.uint32, np.uint64, np.int32,
                                       np.int64])
    def test_dtypes(self, dtype, tmp_path):
        rng = np.random.default_rng(7)
        info = np.iinfo(dtype)
        keys = rng.integers(info.min, info.max, 3000, dtype=dtype)
        _check(keys, 2048, spill_root=str(tmp_path))

    def test_already_sorted_and_reversed(self, tmp_path):
        for dist in ("sorted", "reverse-sorted"):
            keys = make_keys(4096, distribution=dist, seed=1)
            _check(keys, 1024, spill_root=str(tmp_path))


class TestSkewAndDuplicates:
    @pytest.mark.parametrize("dist", ["low-entropy", "zero-entropy",
                                      "gaussian"])
    def test_distributions(self, dist, tmp_path):
        keys = make_keys(1 << 13, distribution=dist, seed=11)
        _check(keys, 2048, spill_root=str(tmp_path))

    def test_zipf_like_skew(self, tmp_path):
        # A heavy-headed distribution: most mass on a handful of values,
        # a long sparse tail — the regime where regular sampling
        # under-splits and the recursive re-split has to save the merge.
        rng = np.random.default_rng(13)
        ranks = rng.zipf(1.3, 1 << 13)
        keys = np.minimum(ranks, 1 << 20).astype(np.uint32)
        _check(keys, 2048, spill_root=str(tmp_path))

    def test_single_repeated_value(self, tmp_path):
        keys = np.full(1 << 12, 42, dtype=np.uint32)
        report = _check(keys, 1024, spill_root=str(tmp_path))
        assert report.peak_resident_bytes <= 1024


class TestBudget:
    def test_peak_resident_within_budget_at_8x(self, tmp_path):
        # The acceptance bar: input 8x the budget, working set bounded.
        budget = 1 << 14
        n = (8 * budget) // 4  # uint32
        keys = make_keys(n, seed=17)
        assert keys.nbytes == 8 * budget
        report = _check(keys, budget, spill_root=str(tmp_path))
        assert report.peak_resident_bytes <= budget
        assert report.runs >= 8

    def test_tiny_budget_still_correct(self, tmp_path):
        # At degenerate budgets (smaller than the splitter sample pool)
        # the bound cannot hold, but correctness still must.
        keys = make_keys(2048, seed=19)
        _check(keys, 64, spill_root=str(tmp_path))

    def test_working_set_estimate(self):
        assert (inmem_working_set_bytes(100, 4)
                == 100 * 4 * INMEM_WORKING_SET_FACTOR)
        assert estimate_spill_bytes(1000) == 2000

    def test_rejects_bad_arguments(self):
        keys = make_keys(64, seed=0)
        with pytest.raises(ConfigurationError):
            external_sort(keys, 0)
        with pytest.raises(ConfigurationError):
            external_sort(keys, 1024, fan_in=1)
        with pytest.raises(ConfigurationError):
            external_sort(np.empty(0, dtype=np.uint32), 1024)
        with pytest.raises(ConfigurationError):
            external_sort(keys.reshape(8, 8), 1024)

    def test_disk_budget_rejection_is_typed(self, tmp_path):
        keys = make_keys(4096, seed=2)
        need = estimate_spill_bytes(keys.nbytes)
        with pytest.raises(MemoryBudgetError) as exc:
            external_sort(keys, 1024, disk_budget=need - 1,
                          spill_root=str(tmp_path))
        assert exc.value.required_bytes == need
        assert exc.value.budget_bytes == need - 1
        # A sufficient disk budget sails through.
        _check(keys, 1024, disk_budget=need, spill_root=str(tmp_path))


class TestCrashSafety:
    def test_context_exit_removes_spill_dir(self, tmp_path):
        keys = make_keys(4096, seed=23)
        _check(keys, 1024, spill_root=str(tmp_path))
        assert live_spill_dirs(str(tmp_path)) == []

    def test_sigkill_mid_spill_is_swept(self, tmp_path):
        # A child creates a spill dir, reports it, and hangs; SIGKILL
        # gives it no chance to clean up.  The orphan sweep, keyed on
        # the dead pid in the directory name, reclaims it.
        child = textwrap.dedent("""
            import sys, time
            import numpy as np
            from repro.extsort import SpillDir
            spill = SpillDir(root=sys.argv[1])
            spill.write_run(np.arange(1024, dtype=np.uint32))
            print(spill.path, flush=True)
            time.sleep(60)
        """)
        proc = subprocess.Popen(
            [sys.executable, "-c", child, str(tmp_path)],
            stdout=subprocess.PIPE, text=True,
            env={**os.environ,
                 "PYTHONPATH": os.pathsep.join(sys.path)},
        )
        try:
            path = proc.stdout.readline().strip()
            assert os.path.isdir(path)
            # While the child lives its directory is not an orphan.
            assert sweep_orphaned_spill_dirs(str(tmp_path)) == []
            proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=30)
            for _ in range(50):  # pid death can lag the wait() a tick
                removed = sweep_orphaned_spill_dirs(str(tmp_path))
                if removed:
                    break
                time.sleep(0.1)
            assert removed == [path]
            assert live_spill_dirs(str(tmp_path)) == []
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=30)

    def test_sweep_spares_live_owners(self, tmp_path):
        with SpillDir(root=str(tmp_path)) as spill:
            spill.write_run(np.arange(16, dtype=np.uint32))
            # This process is alive, so its directory survives the sweep.
            assert sweep_orphaned_spill_dirs(str(tmp_path)) == []
            assert os.path.isdir(spill.path)
        assert live_spill_dirs(str(tmp_path)) == []


class TestServiceAdmission:
    def test_over_budget_degrades_to_external(self, tmp_path):
        from repro.service import Planner, SortService

        keys = make_keys(1 << 14, seed=29)
        budget = keys.nbytes // 2  # working set = 2x nbytes > budget
        with SortService(Planner(), memory_budget=budget,
                         spill_root=str(tmp_path)) as svc:
            out = svc.sort(keys)
            assert out.sorted_keys.tobytes() == np.sort(keys).tobytes()
            assert out.decision.algorithm == "external"
            assert out.decision.source == "budget"
            report = svc.report()
        assert report.degraded_external == 1
        assert report.rejected_memory == 0
        assert live_spill_dirs(str(tmp_path)) == []

    def test_within_budget_stays_in_memory(self):
        from repro.service import Planner, SortService
        from repro.service.planner import EXTERNAL_BACKEND

        keys = make_keys(4096, seed=31)
        with SortService(Planner(),
                         memory_budget=10 * keys.nbytes) as svc:
            out = svc.sort(keys)
            assert out.decision.algorithm != "external"
            assert out.decision.backend != EXTERNAL_BACKEND
        assert svc.report().degraded_external == 0

    def test_disk_budget_rejection(self, tmp_path):
        from repro.service import Planner, SortService

        keys = make_keys(1 << 14, seed=37)
        with SortService(Planner(), memory_budget=keys.nbytes // 2,
                         disk_budget=keys.nbytes // 2,
                         spill_root=str(tmp_path)) as svc:
            with pytest.raises(MemoryBudgetError) as exc:
                svc.submit(keys)
            assert exc.value.budget_bytes == keys.nbytes // 2
            assert exc.value.required_bytes > exc.value.budget_bytes
            report = svc.report()
        assert report.rejected_memory == 1
        assert report.degraded_external == 0

    def test_per_request_budget_overrides_service(self, tmp_path):
        from repro.service import Planner, SortService

        keys = make_keys(1 << 13, seed=41)
        with SortService(Planner(), spill_root=str(tmp_path)) as svc:
            out = svc.sort(keys, memory_budget=keys.nbytes // 2)
            assert out.decision.algorithm == "external"
            assert out.sorted_keys.tobytes() == np.sort(keys).tobytes()

    def test_external_report_describes_budget_lane(self, tmp_path):
        from repro.service import Planner, SortService

        keys = make_keys(1 << 13, seed=43)
        with SortService(Planner(), memory_budget=keys.nbytes // 2,
                         spill_root=str(tmp_path)) as svc:
            svc.sort(keys)
            text = svc.report().describe()
        assert "degraded to external" in text


class TestPlannerRegime:
    def _disk_profile(self):
        from dataclasses import replace

        from repro.service import HostProfile

        return replace(
            HostProfile.default(), source="calibrated",
            disk_read_bytes_per_s=1e9, disk_write_bytes_per_s=5e8,
            fsync_s=1e-4,
        )

    def test_budget_degradation(self):
        from repro.service import Planner

        d = Planner().plan(1 << 16, memory_budget=1 << 10)
        assert d.algorithm == "external"
        assert d.P == 1
        assert d.source == "budget"
        assert "budget-clamped" not in d.explain()  # nothing was forced

    def test_budget_clamps_forced_shape(self):
        from repro.service import Planner

        d = Planner().plan(1 << 16, backend="threads", P=4,
                           memory_budget=1 << 10)
        assert d.algorithm == "external"
        assert d.clamped
        assert "budget-clamped" in d.explain()

    def test_within_budget_is_unaffected(self):
        from repro.service import Planner

        free = Planner().plan(1 << 12)
        budgeted = Planner().plan(1 << 12, memory_budget=1 << 30)
        assert budgeted.algorithm == free.algorithm
        assert budgeted.P == free.P

    def test_faults_refuse_the_external_path(self):
        from repro.faults import FaultPlan
        from repro.service import Planner

        plan = FaultPlan(drop=0.01, seed=1)
        with pytest.raises(ConfigurationError):
            Planner().plan(1 << 16, memory_budget=1 << 10, faults=plan)
        with pytest.raises(ConfigurationError):
            Planner().plan(1 << 12, algorithm="external", faults=plan)

    def test_no_auto_external_without_disk_evidence(self):
        from repro.service import Planner

        # The default profile has no measured disk; even absurd sizes
        # must not route to the unpriceable external regime unforced.
        d = Planner().plan(1 << 20)
        assert d.algorithm != "external"

    def test_external_competes_with_disk_evidence(self):
        from repro.service import Planner

        planner = Planner(profile=self._disk_profile())
        assert planner.profile.has_disk_evidence
        d = planner.plan(1 << 16)
        assert "external:localx1" in d.candidates

    def test_forced_external_runs_without_evidence(self):
        from repro.service import Planner

        d = Planner().plan(1 << 12, algorithm="external")
        assert (d.algorithm, d.P) == ("external", 1)
        assert d.source in ("model", "history")

    def test_decision_table_shows_regime_split(self):
        from repro.service import Planner

        table = Planner().decision_table(
            sizes=(1 << 10, 1 << 20), memory_budget=1 << 14
        )
        lines = table.splitlines()
        assert "external" not in lines[1]
        assert "external" in lines[2]


class TestApiRouting:
    def test_forced_external(self):
        from repro.api import sort

        keys = make_keys(4096, seed=47)
        report = sort(keys, algorithm="external")
        assert report.sorted_keys.tobytes() == np.sort(keys).tobytes()
        assert (report.algorithm, report.backend, report.P) == (
            "external", "local", 1
        )

    def test_budget_degrades_forced_world(self):
        from repro.api import sort

        keys = make_keys(1 << 14, seed=53)
        report = sort(keys, P=4, backend="threads",
                      memory_budget=keys.nbytes // 2)
        assert report.algorithm == "external"
        assert report.sorted_keys.tobytes() == np.sort(keys).tobytes()

    def test_within_budget_keeps_requested_path(self):
        from repro.api import sort

        keys = make_keys(4096, seed=59)
        report = sort(keys, P=4, memory_budget=10 * keys.nbytes)
        assert report.algorithm != "external"

    def test_external_refuses_faults(self):
        from repro.api import sort
        from repro.faults import FaultPlan

        keys = make_keys(4096, seed=61)
        with pytest.raises(ConfigurationError):
            sort(keys, algorithm="external",
                 faults=FaultPlan(drop=0.01, seed=1))

    def test_traced_external_carries_spill_spans(self):
        from repro.api import sort

        keys = make_keys(4096, seed=67)
        report = sort(keys, algorithm="external", trace=True)
        assert report.tracers
        counters = report.tracers[0].counters
        assert counters.get("algo.external", 0) == 1
        assert counters.get("ext.runs", 0) > 0
        assert counters.get("ext.spill_bytes", 0) > 0
        names = {
            (cat, str(name))
            for cat, name, _s, _e, _p in report.tracers[0].spans
        }
        assert ("spill", "write") in names
        assert ("spill", "read") in names
        assert ("merge", "external") in names


class TestPredictExternal:
    def test_closed_form_scales_with_input(self):
        from repro.theory import predict_external

        small = predict_external(1 << 16)
        large = predict_external(1 << 20)
        assert 0 < small.total < large.total

    def test_smaller_budget_never_cheaper(self):
        from repro.theory import predict_external

        tight = predict_external(1 << 20, memory_budget=1 << 16)
        loose = predict_external(1 << 20, memory_budget=1 << 24)
        assert tight.total >= loose.total


@settings(max_examples=30, deadline=None)
@given(
    keys=hnp.arrays(np.uint32, st.integers(1, 400),
                    elements=st.integers(0, 2**32 - 1)),
    budget=st.integers(16, 512),
)
def test_property_byte_equality_under_tiny_budgets(keys, budget):
    # The default spill root; SpillDir removes its directory on exit.
    out, _report = external_sort(keys, budget)
    assert out.tobytes() == np.sort(keys).tobytes()
