"""Tests for the local computation kernels (Chapter 4)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.localsort import (
    BitonicMinStats,
    argmin_bitonic,
    argmin_bitonic_linear,
    batched_bitonic_merge,
    merge_sorted,
    p_way_merge,
    radix_sort,
    sort_bitonic,
)
from repro.localsort.radix import num_passes
from repro.network.properties import is_bitonic


def _random_bitonic(rng, n, distinct=False, lo=0, hi=1000):
    """A random bitonic sequence of length n, optionally duplicate-free."""
    if distinct:
        vals = rng.choice(np.arange(lo, lo + 4 * n), size=n, replace=False)
    else:
        vals = rng.integers(lo, hi, n)
    peak = int(rng.integers(0, n + 1))
    seq = np.concatenate([np.sort(vals[:peak]), np.sort(vals[peak:])[::-1]])
    shift = int(rng.integers(0, n))
    return np.roll(seq, shift)


class TestRadixSort:
    @pytest.mark.parametrize("n", [0, 1, 2, 100, 1024])
    def test_sorts(self, n, rng):
        a = rng.integers(0, 2**31, n).astype(np.uint32)
        np.testing.assert_array_equal(radix_sort(a), np.sort(a))

    def test_descending(self, rng):
        a = rng.integers(0, 2**31, 512).astype(np.uint32)
        np.testing.assert_array_equal(radix_sort(a, ascending=False),
                                      np.sort(a)[::-1])

    def test_stability_irrelevant_but_exact(self):
        a = np.array([3, 1, 2, 1, 3, 0], dtype=np.uint32)
        np.testing.assert_array_equal(radix_sort(a), np.sort(a))

    def test_respects_key_bits(self, rng):
        a = rng.integers(0, 256, 128).astype(np.uint32)
        np.testing.assert_array_equal(radix_sort(a, key_bits=8), np.sort(a))

    def test_rejects_float(self):
        with pytest.raises(ConfigurationError):
            radix_sort(np.array([1.5, 2.5]))

    def test_rejects_2d(self):
        with pytest.raises(ConfigurationError):
            radix_sort(np.zeros((2, 2), dtype=np.uint32))

    def test_num_passes(self):
        assert num_passes(32, 8) == 4
        assert num_passes(31, 8) == 4
        assert num_passes(31, 11) == 3
        with pytest.raises(ConfigurationError):
            num_passes(0, 8)

    def test_input_not_mutated(self, rng):
        a = rng.integers(0, 100, 64).astype(np.uint32)
        b = a.copy()
        radix_sort(a)
        np.testing.assert_array_equal(a, b)


class TestArgminBitonic:
    @given(st.integers(0, 100_000), st.integers(1, 200))
    def test_distinct_elements_exact(self, seed, n):
        rng = np.random.default_rng(seed)
        seq = _random_bitonic(rng, n, distinct=True)
        idx = argmin_bitonic(seq)
        assert seq[idx] == seq.min()

    @given(st.integers(0, 100_000), st.integers(1, 200))
    def test_with_duplicates_still_correct(self, seed, n):
        rng = np.random.default_rng(seed)
        seq = _random_bitonic(rng, n, distinct=False, hi=max(n // 4, 2))
        idx = argmin_bitonic(seq)
        assert seq[idx] == seq.min()

    def test_logarithmic_comparisons_when_distinct(self, rng):
        """Lemma 8: O(log n) comparisons for duplicate-free input."""
        for e in range(4, 18):
            n = 1 << e
            seq = _random_bitonic(rng, n, distinct=True)
            stats = BitonicMinStats()
            argmin_bitonic(seq, stats=stats)
            if not stats.fallback:
                assert stats.comparisons <= 4 * e + 8, (n, stats.comparisons)

    def test_constant_sequence_falls_back(self):
        seq = np.full(64, 5)
        stats = BitonicMinStats()
        idx = argmin_bitonic(seq, stats=stats)
        assert seq[idx] == 5
        assert stats.fallback

    def test_tiny_sequences(self):
        assert argmin_bitonic(np.array([3])) == 0
        assert argmin_bitonic(np.array([3, 1])) == 1
        assert argmin_bitonic(np.array([2, 1, 3])) == 1

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            argmin_bitonic(np.array([]))
        with pytest.raises(ConfigurationError):
            argmin_bitonic_linear(np.array([]))

    def test_linear_reference(self, rng):
        a = rng.integers(0, 100, 37)
        assert argmin_bitonic_linear(a) == np.argmin(a)


class TestSortBitonic:
    @given(st.integers(0, 100_000), st.integers(1, 256))
    def test_sorts_any_bitonic(self, seed, n):
        rng = np.random.default_rng(seed)
        seq = _random_bitonic(rng, n)
        np.testing.assert_array_equal(sort_bitonic(seq), np.sort(seq))

    def test_descending(self, rng):
        seq = _random_bitonic(rng, 64)
        np.testing.assert_array_equal(sort_bitonic(seq, ascending=False),
                                      np.sort(seq)[::-1])

    def test_monotone_inputs(self):
        a = np.arange(16)
        np.testing.assert_array_equal(sort_bitonic(a), a)
        np.testing.assert_array_equal(sort_bitonic(a[::-1].copy()), a)

    def test_trivial(self):
        np.testing.assert_array_equal(sort_bitonic(np.array([7])), [7])

    def test_uses_logarithmic_min(self, rng):
        seq = _random_bitonic(rng, 1 << 12, distinct=True)
        stats = BitonicMinStats()
        sort_bitonic(seq, stats=stats)
        if not stats.fallback:
            assert stats.comparisons < 100


class TestBatchedBitonicMerge:
    def test_rows(self, rng):
        rows = np.stack([_random_bitonic(rng, 16) for _ in range(8)])
        asc = np.array([True, False] * 4)
        out = batched_bitonic_merge(rows, asc, axis=1)
        for i in range(8):
            expect = np.sort(rows[i]) if asc[i] else np.sort(rows[i])[::-1]
            np.testing.assert_array_equal(out[i], expect)

    def test_columns(self, rng):
        cols = np.stack([_random_bitonic(rng, 16) for _ in range(8)], axis=1)
        out = batched_bitonic_merge(cols, True, axis=0)
        for j in range(8):
            np.testing.assert_array_equal(out[:, j], np.sort(cols[:, j]))

    def test_scalar_direction_broadcasts(self, rng):
        rows = np.stack([_random_bitonic(rng, 8) for _ in range(4)])
        out = batched_bitonic_merge(rows, False, axis=1)
        for i in range(4):
            np.testing.assert_array_equal(out[i], np.sort(rows[i])[::-1])

    def test_input_not_mutated(self, rng):
        rows = np.stack([_random_bitonic(rng, 8) for _ in range(4)])
        before = rows.copy()
        batched_bitonic_merge(rows, True, axis=1)
        np.testing.assert_array_equal(rows, before)

    def test_rejects_non_power_of_two_lane(self):
        with pytest.raises(ConfigurationError):
            batched_bitonic_merge(np.zeros((4, 6)), True, axis=1)

    def test_rejects_bad_axis_and_ndim(self):
        with pytest.raises(ConfigurationError):
            batched_bitonic_merge(np.zeros(8), True, axis=1)
        with pytest.raises(ConfigurationError):
            batched_bitonic_merge(np.zeros((4, 4)), True, axis=2)


class TestMerges:
    @given(st.integers(0, 100_000), st.integers(0, 64), st.integers(0, 64))
    def test_merge_sorted(self, seed, nx, ny):
        rng = np.random.default_rng(seed)
        x = np.sort(rng.integers(0, 50, nx))
        y = np.sort(rng.integers(0, 50, ny))
        np.testing.assert_array_equal(
            merge_sorted(x, y), np.sort(np.concatenate([x, y]))
        )

    def test_merge_empty_sides(self):
        np.testing.assert_array_equal(merge_sorted(np.array([]), np.array([1, 2])),
                                      [1, 2])
        np.testing.assert_array_equal(merge_sorted(np.array([1]), np.array([])),
                                      [1])

    @given(st.integers(0, 100_000), st.integers(1, 9))
    def test_p_way_merge(self, seed, p):
        rng = np.random.default_rng(seed)
        runs = [np.sort(rng.integers(0, 100, rng.integers(0, 40))) for _ in range(p)]
        if all(r.size == 0 for r in runs):
            runs[0] = np.array([1])
        np.testing.assert_array_equal(
            p_way_merge(runs), np.sort(np.concatenate(runs))
        )

    def test_p_way_merge_rejects_all_empty(self):
        with pytest.raises(ConfigurationError):
            p_way_merge([np.array([]), np.array([])])
