"""Deep hypothesis property suite: randomized machine/problem shapes.

Where the per-module tests pin specific examples, this module draws random
``(lg N, lg P)`` shapes and random workloads and checks the library's
global contracts hold across the whole space — including the corners the
paper brushes past (``n < P``, ``P = N/2``, two processors, duplicate-heavy
keys).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.layouts import (
    bits_changed,
    blocked_layout,
    cyclic_layout,
    smart_layout,
    smart_schedule,
)
from repro.layouts.analysis import communication_group
from repro.network.properties import is_bitonic
from repro.network.sequential import bitonic_sort_network
from repro.remap.masks import changed_local_bits, pack_mask, unpack_mask
from repro.remap.plan import build_remap_plan
from repro.sorts import SmartBitonicSort
from repro.theory.predict import predict_smart
from repro.utils.bits import ilog2


shapes = st.tuples(st.integers(2, 12), st.integers(1, 6)).filter(
    lambda t: t[1] < t[0]
)


class TestLayoutSpace:
    @given(shapes, st.data())
    def test_any_smart_layout_is_a_bijection(self, shape, data):
        lgN, lgP = shape
        N, P = 1 << lgN, 1 << lgP
        lgn = lgN - lgP
        stage = data.draw(st.integers(lgn + 1, lgN))
        step = data.draw(st.integers(1, stage))
        lay = smart_layout(N, P, stage, step)
        a = np.arange(N)
        proc, local = lay.to_relative(a)
        np.testing.assert_array_equal(lay.to_absolute(proc, local), a)

    @given(shapes, st.data())
    def test_pack_and_unpack_masks_same_weight(self, shape, data):
        """The number of shaded bits is the same in both masks: what
        leaves the local address on one side enters it on the other."""
        lgN, lgP = shape
        N, P = 1 << lgN, 1 << lgP
        lgn = lgN - lgP
        stage = data.draw(st.integers(lgn + 1, lgN))
        step = data.draw(st.integers(1, stage))
        old = data.draw(st.sampled_from(
            [blocked_layout(N, P), cyclic_layout(N, P)]
        ))
        new = smart_layout(N, P, stage, step)
        assert pack_mask(old, new).count("S") == unpack_mask(old, new).count("S")
        assert len(changed_local_bits(old, new)) == bits_changed(old, new)

    @given(shapes)
    def test_schedule_remap_invariants(self, shape):
        lgN, lgP = shape
        N, P = 1 << lgN, 1 << lgP
        sched = smart_schedule(N, P)
        bits = sched.bits_changed_per_remap()
        # Every remap moves something (no no-op remaps in the schedule).
        assert all(bc >= 1 for bc in bits)
        # No remap can change more bits than the local address has.
        lgn = lgN - lgP
        assert all(bc <= min(lgn, lgP) for bc in bits)
        # The final layout is blocked: the sort ends in standard placement.
        assert sched.phases[-1].layout == blocked_layout(N, P)

    @given(shapes)
    def test_plan_conservation_random_transition(self, shape):
        """Every remap plan conserves elements globally."""
        lgN, lgP = shape
        N, P = 1 << lgN, 1 << lgP
        sched = smart_schedule(N, P)
        total_sent = total_kept = 0
        old, new = sched.transitions()[len(sched.transitions()) // 2]
        for r in range(P):
            plan = build_remap_plan(old, new, r)
            total_sent += plan.elements_sent
            total_kept += plan.keep_src.size
        assert total_sent + total_kept == N


class TestGroupStructure:
    @given(shapes)
    def test_groups_partition_machine_when_n_ge_p(self, shape):
        lgN, lgP = shape
        N, P = 1 << lgN, 1 << lgP
        if N // P < P:
            return
        sched = smart_schedule(N, P)
        for (old, new), bc in zip(sched.transitions(),
                                  sched.bits_changed_per_remap()):
            seen = set()
            for r in range(P):
                first, size = communication_group(r, bc, P)
                assert first <= r < first + size
                seen.add((first, size))
            # The groups tile the machine.
            assert sum(size for _, size in seen) == P


class TestSortSpace:
    @given(st.integers(0, 10**6))
    @settings(max_examples=25)
    def test_random_shape_random_keys(self, seed):
        rng = np.random.default_rng(seed)
        lgP = int(rng.integers(1, 5))
        lgn = int(rng.integers(1, 8))
        P, n = 1 << lgP, 1 << lgn
        keys = rng.integers(0, 1 << 31, P * n, dtype=np.uint32)
        res = SmartBitonicSort().run(keys, P, verify=True)
        # The simulated time is positive and the breakdown covers it.
        st_ = res.stats
        assert st_.elapsed_us > 0
        busy = st_.mean_breakdown.total() - st_.mean_breakdown.times["wait"]
        assert busy == pytest.approx(predict_smart(P * n, P).total,
                                     rel=1e-9, abs=1e-6)

    @given(st.integers(0, 10**6))
    @settings(max_examples=15)
    def test_matches_sequential_network_exactly(self, seed):
        """Not just sorted: identical to the sequential network's output
        (which equals np.sort, but this closes the loop independently)."""
        rng = np.random.default_rng(seed)
        keys = rng.integers(0, 64, 256, dtype=np.uint32)  # heavy duplicates
        res = SmartBitonicSort().run(keys, 8)
        np.testing.assert_array_equal(res.sorted_keys,
                                      bitonic_sort_network(keys))

    @given(st.integers(0, 10**6))
    @settings(max_examples=15)
    def test_partition_states_remain_bitonic_compatible(self, seed):
        """After the initial local sorts, concatenating partitions yields
        Lemma 6's stage input: alternating monotone runs, i.e. adjacent
        pairs form bitonic sequences."""
        from repro.localsort.radix import radix_sort

        rng = np.random.default_rng(seed)
        P, n = 8, 64
        keys = rng.integers(0, 1 << 31, P * n, dtype=np.uint32)
        parts = [radix_sort(keys[r * n:(r + 1) * n], ascending=(r % 2 == 0))
                 for r in range(P)]
        glob = np.concatenate(parts)
        for pair in glob.reshape(-1, 2 * n):
            assert is_bitonic(pair)
