"""Unit and property tests for repro.utils.bits."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.utils.bits import (
    bit_field,
    bit_of,
    bit_reverse,
    deposit_field,
    ilog2,
    is_power_of_two,
    mask,
    popcount,
)


class TestIsPowerOfTwo:
    def test_powers(self):
        for e in range(20):
            assert is_power_of_two(1 << e)

    def test_non_powers(self):
        for x in (0, -1, -8, 3, 5, 6, 7, 9, 12, 1023):
            assert not is_power_of_two(x)


class TestIlog2:
    def test_exact(self):
        for e in range(25):
            assert ilog2(1 << e) == e

    @pytest.mark.parametrize("bad", [0, -4, 3, 6, 100])
    def test_rejects_non_powers(self, bad):
        with pytest.raises(ConfigurationError):
            ilog2(bad)


class TestMask:
    def test_values(self):
        assert mask(0) == 0
        assert mask(1) == 1
        assert mask(3) == 0b111
        assert mask(10) == 1023

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            mask(-1)


class TestBitOf:
    def test_scalar(self):
        assert bit_of(0b1010, 1) == 1
        assert bit_of(0b1010, 0) == 0
        assert bit_of(0b1010, 3) == 1

    def test_vectorized(self):
        a = np.array([0b00, 0b01, 0b10, 0b11])
        np.testing.assert_array_equal(bit_of(a, 0), [0, 1, 0, 1])
        np.testing.assert_array_equal(bit_of(a, 1), [0, 0, 1, 1])


class TestBitField:
    def test_extract(self):
        assert bit_field(0b10110, 1, 3) == 0b011
        assert bit_field(0b10110, 0, 5) == 0b10110
        assert bit_field(0xFF, 4, 4) == 0xF

    def test_zero_width(self):
        assert bit_field(0xFF, 3, 0) == 0

    def test_negative_lo_rejected(self):
        with pytest.raises(ConfigurationError):
            bit_field(1, -1, 2)

    def test_vectorized(self):
        a = np.arange(16)
        np.testing.assert_array_equal(bit_field(a, 1, 2), (a >> 1) & 3)


class TestDepositField:
    def test_roundtrip_with_extract(self):
        x = 0b101010
        y = deposit_field(x, 0b11, 1, 2)
        assert bit_field(y, 1, 2) == 0b11
        # Other bits untouched.
        assert y & ~(0b11 << 1) == x & ~(0b11 << 1)

    def test_masks_stray_high_bits(self):
        assert deposit_field(0, 0b1111, 0, 2) == 0b11

    def test_vectorized(self):
        a = np.zeros(4, dtype=np.int64)
        out = deposit_field(a, np.array([0, 1, 2, 3]), 2, 2)
        np.testing.assert_array_equal(out, [0, 4, 8, 12])

    @given(
        st.integers(0, 2**20 - 1),
        st.integers(0, 2**6 - 1),
        st.integers(0, 14),
        st.integers(0, 6),
    )
    def test_extract_after_deposit(self, x, v, lo, width):
        assert bit_field(deposit_field(x, v, lo, width), lo, width) == v & mask(width)


class TestBitReverse:
    def test_known(self):
        assert bit_reverse(0b001, 3) == 0b100
        assert bit_reverse(0b110, 3) == 0b011

    @given(st.integers(0, 2**12 - 1), st.integers(0, 12))
    def test_involution(self, x, width):
        x &= mask(width)
        assert bit_reverse(bit_reverse(x, width), width) == x

    def test_vectorized_matches_scalar(self):
        a = np.arange(64)
        out = bit_reverse(a, 6)
        for i in range(64):
            assert out[i] == bit_reverse(i, 6)


class TestPopcount:
    @given(st.integers(0, 2**40))
    def test_matches_python(self, x):
        assert popcount(x) == x.bit_count()

    def test_vectorized(self):
        a = np.array([0, 1, 3, 7, 255, 2**31], dtype=np.int64)
        np.testing.assert_array_equal(popcount(a), [0, 1, 2, 3, 8, 1])
