"""Group-scoped collectives (Lemma 4) and the fused zero-copy remap path.

Covers the Lemma-4 group derivation (pure bit algebra), the
``group_alltoallv`` / ``alltoallv_fused`` collectives on both SPMD
backends, byte-equality of every fused × grouped combination against the
plain world-wide path, the trace-counter contracts, the
procs-backend copy-out requirement, and the compatibility fallback under
the fault-injection transport.
"""

import numpy as np
import pytest

from repro.api import sort
from repro.errors import CommunicationError
from repro.layouts import smart_schedule
from repro.layouts.base import bits_changed
from repro.remap.cache import cached_remap_plan
from repro.remap.groups import (
    destination_procs,
    remap_group,
    remap_group_partition,
)
from repro.runtime import BackendOptions, run_spmd, spmd_bitonic_sort
from repro.trace import Tracer
from repro.utils.rng import make_keys

SHAPES = [(4096, 8), (16384, 16), (1024, 4)]


def _transitions(N, P):
    return smart_schedule(N, P).transitions()


class TestGroupDerivation:
    @pytest.mark.parametrize("N,P", SHAPES)
    def test_partition_sizes_are_two_to_the_changed_bits(self, N, P):
        """Lemma 4: every group of ``old -> new`` has exactly
        ``2**N_BitsChanged`` members, and the groups tile ``0..P-1``."""
        for old, new in _transitions(N, P):
            c = bits_changed(old, new)
            partition = remap_group_partition(old, new)
            seen = []
            for group in partition:
                assert len(group) == min(2 ** c, P)
                assert list(group) == sorted(group)
                seen.extend(group)
            assert sorted(seen) == list(range(P))

    @pytest.mark.parametrize("N,P", SHAPES)
    def test_plan_peers_stay_inside_the_group(self, N, P):
        """The executable plans agree with the algebra: every send and
        receive peer of every rank lies inside that rank's group."""
        for old, new in _transitions(N, P):
            for r in range(P):
                group = set(remap_group(old, new, r))
                plan = cached_remap_plan(old, new, r)
                assert set(plan.send) <= group - {r}
                assert set(plan.recv) <= group - {r}

    @pytest.mark.parametrize("N,P", SHAPES)
    def test_destination_procs_match_plan_sends(self, N, P):
        """``destination_procs`` (O(2^c) bit algebra) is a superset of the
        plan's actual destinations and never exceeds the Lemma-4 span."""
        for old, new in _transitions(N, P):
            c = bits_changed(old, new)
            for r in range(P):
                dests = destination_procs(old, new, r)
                assert len(dests) == min(2 ** c, P)
                assert r in dests
                plan = cached_remap_plan(old, new, r)
                assert set(plan.send) <= dests

    def test_group_is_memoized(self):
        old, new = _transitions(4096, 8)[0]
        assert remap_group_partition(old, new) is remap_group_partition(old, new)


class TestByteEquality:
    """Every fused × grouped combination, on both backends, produces the
    byte-identical globally sorted output."""

    @pytest.mark.parametrize("backend", ["threads", "procs"])
    @pytest.mark.parametrize("fused", [True, False])
    @pytest.mark.parametrize("grouped", [True, False])
    def test_spmd_sort_all_modes(self, backend, fused, grouped):
        P, n = 4, 512
        keys = make_keys(P * n, seed=11)
        expect = np.sort(keys)

        def prog(c):
            return spmd_bitonic_sort(
                c, keys[c.rank * n : (c.rank + 1) * n],
                fused=fused, grouped=grouped,
            )

        out = np.concatenate(run_spmd(P, prog, backend=backend))
        assert out.tobytes() == expect.tobytes()

    @pytest.mark.parametrize(
        "algorithm", ["smart", "cyclic-blocked", "blocked-merge", "radix", "sample"]
    )
    def test_simulated_sorts_unchanged(self, algorithm):
        """The group/fused machinery lives in the SPMD runtime; all five
        simulated algorithms still verify element-exactly."""
        keys = make_keys(2048, seed=13)
        rep = sort(keys, P=4, algorithm=algorithm, backend="simulated")
        assert rep.sorted_keys.tobytes() == np.sort(keys).tobytes()

    @pytest.mark.parametrize("backend", ["threads", "procs"])
    def test_front_door_flags(self, backend):
        keys = make_keys(2048, seed=17)
        expect = np.sort(keys).tobytes()
        for opts in (
            None,
            BackendOptions(fused=False),
            BackendOptions(grouped=False),
            BackendOptions(fused=False, grouped=False),
        ):
            rep = sort(keys, P=4, backend=backend, backend_options=opts)
            assert rep.sorted_keys.tobytes() == expect


class TestTraceContracts:
    def _tracers(self, backend, fused, grouped, P=4, n=1024):
        keys = make_keys(P * n, seed=23)

        def prog(c):
            c.tracer = Tracer(c.rank)
            spmd_bitonic_sort(
                c, keys[c.rank * n : (c.rank + 1) * n],
                fused=fused, grouped=grouped,
            )
            return c.tracer

        return run_spmd(P, prog, backend=backend)

    @pytest.mark.parametrize("backend", ["threads", "procs"])
    def test_group_size_bounded_by_lemma4(self, backend):
        """Summed group membership never exceeds the Lemma-4 bound
        ``2**max(N_BitsChanged)`` per group collective, and grouping
        strictly reduces descriptor-slot work against the world run."""
        P, n = 4, 1024
        max_changed = max(
            bits_changed(old, new) for old, new in _transitions(P * n, P)
        )
        grouped_trs = self._tracers(backend, fused=False, grouped=True)
        world_trs = self._tracers(backend, fused=False, grouped=False)
        for tr in grouped_trs:
            calls = tr.counters.get("coll.group_alltoallv", 0)
            size_sum = tr.counters.get("coll.group_size", 0)
            assert calls > 0, "grouping never engaged"
            assert size_sum <= calls * 2 ** max_changed
            assert size_sum >= 2 * calls  # groups have at least a pair
        grouped_slots = sum(t.counters["coll.slots"] for t in grouped_trs)
        world_slots = sum(t.counters["coll.slots"] for t in world_trs)
        assert grouped_slots < world_slots

    @pytest.mark.parametrize("backend", ["threads", "procs"])
    def test_fused_takes_the_direct_path_every_remap(self, backend):
        """On the bundled backends the fused collective must never fall
        back to the composed bucket path for plain integer keys — and the
        per-remap unpack copy pass disappears outright."""
        for tr in self._tracers(backend, fused=True, grouped=True):
            remaps = tr.counters["remaps"]
            assert tr.counters["coll.fused"] == remaps
            assert tr.counters["coll.fused_direct"] == remaps
            assert tr.counters.get("coll.alltoallv", 0) == 0
            assert "unpack" not in tr.totals()

    @pytest.mark.parametrize("backend", ["threads", "procs"])
    def test_fused_moves_fewer_bytes_of_copies(self, backend):
        """Fused and unfused runs transfer identical payload bytes — the
        saving is the vanished unpack pass, not smaller messages."""
        fused = self._tracers(backend, fused=True, grouped=False)
        plain = self._tracers(backend, fused=False, grouped=False)
        assert sum(t.counters["bytes_sent"] for t in fused) == sum(
            t.counters["bytes_sent"] for t in plain
        )


class TestGroupCollectiveProtocol:
    @pytest.mark.parametrize("backend", ["threads", "procs"])
    def test_group_and_world_collectives_interleave(self, backend):
        """Disjoint group exchanges, then a world collective, repeated —
        exercises the procs arena-reuse guard (readers outside the group
        must not be overtaken) and the threads per-group barriers."""
        P = 4

        def prog(c):
            me = c.rank
            for round_ in range(4):
                g = (0, 1) if me < 2 else (2, 3)
                peer = g[1 - g.index(me)]
                buckets = [None] * P
                buckets[peer] = np.full(8, me * 100 + round_, dtype=np.int64)
                got = c.group_alltoallv(buckets, g)
                assert (got[peer] == peer * 100 + round_).all()
                assert c.allgather(me) == list(range(P))
            return True

        assert run_spmd(P, prog, backend=backend) == [True] * P

    @pytest.mark.parametrize("backend", ["threads", "procs"])
    def test_group_rejects_outside_bucket(self, backend):
        P = 4

        def prog(c):
            if c.rank == 0:
                buckets = [None] * P
                buckets[3] = np.arange(4)  # rank 3 is outside (0, 1)
                try:
                    c.group_alltoallv(buckets, (0, 1))
                except CommunicationError:
                    return "raised"
                return "no-raise"
            return "peer"

        # Rank 0 must reject before communicating, so no peer ever blocks.
        out = run_spmd(P, prog, backend=backend)
        assert out[0] == "raised"


class TestProcsCopyRequired:
    """Satellite: the ``.copy()`` in the procs raw-ndarray receive path is
    load-bearing.  ``alltoallv`` hands the caller an array it may hold
    forever, while the sender recycles the backing arena two collectives
    later — so the returned array must own its memory, and it must stay
    intact after later collectives rewrite every arena."""

    def test_received_arrays_own_their_memory_and_survive_reuse(self):
        P = 2

        def prog(c):
            me = c.rank
            peer = 1 - me
            buckets = [None] * P
            buckets[peer] = np.full(64, 7000 + me, dtype=np.int64)
            held = c.alltoallv(buckets)[peer]
            # Owns its memory: not a view into the shared arena.
            assert held.base is None and held.flags.owndata
            snapshot = held.copy()
            # Four more collectives rewrite both parities of every arena
            # with different payloads.
            for round_ in range(4):
                buckets = [None] * P
                buckets[peer] = np.full(64, round_, dtype=np.int64)
                c.alltoallv(buckets)
            assert (held == snapshot).all()
            return True

        assert run_spmd(P, prog, backend="procs") == [True] * P

    def test_fused_path_avoids_the_copy_without_the_hazard(self):
        """The fused collective's receive windows never escape the
        collective: the caller's ``out`` buffer is a plain owned array
        filled in-place, so later collectives cannot disturb it."""
        P, n = 2, 512
        keys = make_keys(P * n, seed=29)

        def prog(c):
            out = spmd_bitonic_sort(
                c, keys[c.rank * n : (c.rank + 1) * n], fused=True
            )
            # May be a view from the merge kernel's reshape, but the root
            # of the base chain must be an owned ndarray — never a window
            # into a shared-memory arena.
            root = out
            while isinstance(root, np.ndarray) and root.base is not None:
                root = root.base
            assert isinstance(root, np.ndarray) and root.flags.owndata
            snapshot = out.copy()
            # More traffic through the same arenas.
            for _ in range(3):
                c.allgather(int(out[0]))
            assert (out == snapshot).all()
            return out

        got = np.concatenate(run_spmd(P, prog, backend="procs"))
        assert got.tobytes() == np.sort(keys).tobytes()


class TestFaultTransportFallback:
    def test_fused_sort_under_reliable_comm_falls_back_and_sorts(self):
        """ReliableComm has no zero-copy path; the fused call must compose
        through its (fault-injected) ``alltoallv`` and still sort."""
        from repro.faults.plan import FaultPlan

        keys = make_keys(2048, seed=31)
        rep = sort(
            keys, P=4, backend="threads", trace=True,
            faults=FaultPlan(seed=5, drop=0.05, duplicate=0.05),
        )
        assert rep.sorted_keys.tobytes() == np.sort(keys).tobytes()
        fused = sum(t.counters.get("coll.fused", 0) for t in rep.tracers)
        direct = sum(t.counters.get("coll.fused_direct", 0) for t in rep.tracers)
        assert fused > 0  # the fused call was made...
        assert direct == 0  # ...and composed, never claiming zero-copy
