"""Tests for the benchmark trajectory harness and its CLI subcommand."""

import json

import numpy as np
import pytest

from repro.harness.bench import (
    BENCH_SCHEMA,
    _legacy_batched_merge,
    _legacy_radix_sort,
    run_bench,
    write_bench,
)
from repro.harness.cli import main
from repro.localsort import batched_bitonic_merge, radix_sort
from repro.utils.rng import make_keys

#: Tiny but structurally complete bench configuration for tests.
TINY = dict(quick=True, sizes=[1 << 10], procs=2, reps=1, timeout=60.0)


@pytest.fixture(scope="module")
def payload():
    return run_bench(**TINY)


class TestRunBench:
    def test_schema_and_sections(self, payload):
        assert payload["schema"] == BENCH_SCHEMA
        assert payload["outputs_match"] is True
        assert payload["host"]["cpu_count"] >= 1
        assert payload["config"]["sizes"] == [1 << 10]
        assert set(payload["kernels"]) == {"radix", "merge", "plan"}

    def test_end_to_end_covers_backends_and_sizes(self, payload):
        seen = {(r["backend"], r["keys"]) for r in payload["end_to_end"]}
        assert seen == {("threads", 1 << 10), ("procs", 1 << 10)}
        for rec in payload["end_to_end"]:
            assert rec["best_s"] > 0
            assert rec["mean_s"] >= rec["best_s"]

    def test_speedup_recorded(self, payload):
        by_size = payload["end_to_end_speedup"]["procs_over_threads"]
        assert set(by_size) == {str(1 << 10)}
        assert by_size[str(1 << 10)] > 0

    def test_kernel_records_have_both_sides(self, payload):
        rec = payload["kernels"]["radix"][0]
        assert rec["legacy_argsort"]["best_s"] > 0
        assert rec["counting_scatter"]["best_s"] > 0
        rec = payload["kernels"]["merge"][0]
        assert rec["legacy_two_copies"]["best_s"] > 0
        assert rec["single_copy"]["best_s"] > 0
        rec = payload["kernels"]["plan"][0]
        assert rec["plan_cache_warm"]["best_s"] > 0
        assert rec["speedup"] > 1  # a warm cache must beat rebuilding

    def test_json_round_trip(self, payload, tmp_path):
        out = tmp_path / "bench.json"
        write_bench(payload, str(out))
        assert json.loads(out.read_text())["schema"] == BENCH_SCHEMA


class TestLegacyKernelsStayHonest:
    """The A/B baselines must remain observationally identical to the
    optimized kernels, or the recorded speedups are fiction."""

    def test_radix_agrees(self):
        keys = make_keys(4096, seed=11)
        np.testing.assert_array_equal(radix_sort(keys), _legacy_radix_sort(keys))
        np.testing.assert_array_equal(
            radix_sort(keys, ascending=False),
            _legacy_radix_sort(keys, ascending=False),
        )

    def test_merge_agrees_both_axes(self):
        keys = make_keys(4096, seed=12)
        m = np.sort(keys.reshape(64, 64), axis=1)
        m[::2] = m[::2, ::-1]  # alternating rows: bitonic either way
        for axis, mat in ((1, m), (0, m.T)):
            np.testing.assert_array_equal(
                batched_bitonic_merge(mat, True, axis=axis),
                _legacy_batched_merge(mat, True, axis=axis),
            )


class TestBenchCli:
    def test_bench_subcommand_writes_json(self, tmp_path, capsys):
        out = tmp_path / "BENCH_test.json"
        rc = main([
            "bench", "--quick", "--sizes", "1024", "--procs", "2",
            "--reps", "1", "--out", str(out),
        ])
        assert rc == 0
        data = json.loads(out.read_text())
        assert data["schema"] == BENCH_SCHEMA
        assert "benchmark trajectory" in capsys.readouterr().out

    def test_bench_threads_only(self, tmp_path):
        out = tmp_path / "b.json"
        rc = main([
            "bench", "--quick", "--sizes", "1024", "--procs", "2",
            "--reps", "1", "--backends", "threads", "--out", str(out),
        ])
        assert rc == 0
        data = json.loads(out.read_text())
        assert {r["backend"] for r in data["end_to_end"]} == {"threads"}
        # No cross-backend ratio without procs; the fused-vs-unfused A/B
        # is still measured on the one backend that ran.
        speedups = data["end_to_end_speedup"]
        assert "procs_over_threads" not in speedups
        assert set(speedups) == {
            "threads_fused_over_unfused", "threads_overlap_over_sync",
            "threads_sample_over_bitonic",
        }
        assert set(speedups["threads_fused_over_unfused"]) == {"1024"}
        assert set(speedups["threads_overlap_over_sync"]) == {"1024"}
        assert set(speedups["threads_sample_over_bitonic"]) == {"1024"}
