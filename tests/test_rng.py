"""Tests for the workload generators."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.utils.rng import DISTRIBUTIONS, KEY_RANGE, KeyGenerator, make_keys


class TestKeyGenerator:
    def test_unknown_distribution_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown key distribution"):
            KeyGenerator(distribution="nope")

    def test_negative_size_rejected(self):
        with pytest.raises(ConfigurationError):
            KeyGenerator().generate(-1)

    def test_reproducible(self):
        a = KeyGenerator(seed=42).generate(1000)
        b = KeyGenerator(seed=42).generate(1000)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = KeyGenerator(seed=1).generate(1000)
        b = KeyGenerator(seed=2).generate(1000)
        assert not np.array_equal(a, b)

    @pytest.mark.parametrize("dist", sorted(DISTRIBUTIONS))
    def test_dtype_and_range(self, dist):
        keys = make_keys(4096, distribution=dist, seed=5)
        assert keys.dtype == np.uint32
        assert keys.size == 4096
        assert int(keys.max(initial=0)) < KEY_RANGE

    def test_zero_size(self):
        assert make_keys(0).size == 0


class TestDistributionShapes:
    def test_uniform_spreads(self):
        keys = make_keys(1 << 14, distribution="uniform")
        # Rough spread check: values land in all four quartiles of the range.
        hist, _ = np.histogram(keys, bins=4, range=(0, KEY_RANGE))
        assert (hist > 0).all()

    def test_low_entropy_few_distinct(self):
        keys = make_keys(1 << 14, distribution="low-entropy")
        assert np.unique(keys).size <= 16

    def test_zero_entropy_single_value(self):
        keys = make_keys(1 << 10, distribution="zero-entropy")
        assert np.unique(keys).size == 1

    def test_sorted_orders(self):
        asc = make_keys(1 << 10, distribution="sorted")
        desc = make_keys(1 << 10, distribution="reverse-sorted")
        assert (np.diff(asc.astype(np.int64)) >= 0).all()
        assert (np.diff(desc.astype(np.int64)) <= 0).all()

    def test_gaussian_concentrated(self):
        keys = make_keys(1 << 14, distribution="gaussian")
        center = KEY_RANGE // 2
        # The clipped normal concentrates near the center of the range.
        frac_middle = np.mean(np.abs(keys.astype(np.int64) - center) < KEY_RANGE // 4)
        assert frac_middle > 0.95
