"""The tracing layer: recorder semantics, exporters, report alignment,
runtime instrumentation, and the zero-overhead guarantee."""

import json
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import sort
from repro.errors import ConfigurationError
from repro.machine.metrics import CATEGORIES
from repro.runtime import Comm, run_spmd, spmd_bitonic_sort
from repro.trace import (
    CHROME_TRACE_SCHEMA,
    PhaseReport,
    Tracer,
    build_phase_report,
    merged_counters,
    to_chrome_trace,
    trace_span,
    trace_to_dict,
    write_chrome_trace,
)
from repro.trace import recorder as recorder_module
from repro.utils.rng import make_keys

GOLDEN = Path(__file__).parent / "data" / "chrome_trace_golden.json"


class TestTracer:
    def test_span_records_interval(self):
        tr = Tracer(3)
        with tr.span("local_sort"):
            pass
        assert len(tr) == 1
        cat, name, start, end, parent = tr.spans[0]
        assert cat == "local_sort" and name is None and parent == -1
        assert end >= start
        assert tr.rank == 3

    def test_unknown_category_rejected(self):
        tr = Tracer()
        with pytest.raises(ConfigurationError, match="unknown trace category"):
            tr.begin("disco")

    def test_nesting_tracks_parents(self):
        tr = Tracer()
        with tr.span("transfer", 1):
            with tr.span("wait", "barrier"):
                pass
        assert tr.spans[1][4] == 0  # wait's parent is the transfer span
        assert tr.spans[0][4] == -1

    def test_totals_are_exclusive(self):
        """Nested spans never double-count: the parent's total is its own
        time minus the children's."""
        tr = Tracer()
        tr.spans = [
            ["transfer", None, 0.0, 1.0, -1],
            ["wait", None, 0.2, 0.6, 0],
        ]
        totals = tr.totals()
        assert totals["transfer"] == pytest.approx(0.6)
        assert totals["wait"] == pytest.approx(0.4)
        assert sum(totals.values()) == pytest.approx(tr.wall())

    def test_unclosed_span_ignored(self):
        tr = Tracer()
        tr.begin("merge")
        assert tr.totals() == {}
        assert tr.wall() == 0.0

    def test_counters_accumulate(self):
        tr = Tracer()
        tr.add("messages")
        tr.add("messages", 2)
        tr.add("bytes_sent", 1024)
        assert tr.counters == {"messages": 3, "bytes_sent": 1024}

    def test_merged_counters_sums_world(self):
        a, b = Tracer(0), Tracer(1)
        a.add("messages", 2)
        b.add("messages", 3)
        b.add("remaps")
        assert merged_counters([a, b]) == {"messages": 5, "remaps": 1}


def _golden_tracers():
    """Hand-built world with fixed timestamps — the schema fixture."""
    t0 = Tracer(0)
    t0.spans = [
        ["local_sort", None, 1.0, 1.25, -1],
        ["transfer", 1, 1.25, 1.5, -1],
        ["wait", "barrier", 1.3, 1.45, 1],
    ]
    t0.counters = {"messages": 3, "bytes_sent": 1024}
    t1 = Tracer(1)
    t1.spans = [["merge", 2, 1.1, 1.4, -1]]
    t1.counters = {"messages": 1}
    return [t0, t1]


class TestChromeExport:
    def test_matches_golden_file(self):
        """The exported structure is pinned byte-for-byte by a golden file;
        regenerate it deliberately (see tests/data/README) when the schema
        version is bumped, never by accident."""
        produced = json.loads(json.dumps(to_chrome_trace(_golden_tracers())))
        assert produced == json.loads(GOLDEN.read_text())

    def test_event_fields(self):
        doc = to_chrome_trace(_golden_tracers())
        events = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert len(events) == 4  # three spans on rank 0, one on rank 1
        for e in events:
            assert e["cat"] in CATEGORIES
            assert e["dur"] >= 0 and e["ts"] >= 0
            assert e["pid"] == 0 and e["tid"] in (0, 1)
        # Timestamps are µs relative to the world's earliest span start.
        assert min(e["ts"] for e in events) == 0.0
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        assert {m["args"]["name"] for m in meta} == {"rank 0", "rank 1"}

    def test_other_data_carries_schema_and_counters(self):
        doc = to_chrome_trace(_golden_tracers())
        other = doc["otherData"]
        assert other["schema"] == CHROME_TRACE_SCHEMA
        assert other["categories"] == list(CATEGORIES)
        assert other["ranks"] == 2
        assert other["counters"]["messages"] == 4

    def test_write_round_trips(self, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(str(path), _golden_tracers())
        assert json.loads(path.read_text()) == to_chrome_trace(_golden_tracers())

    def test_trace_to_dict_preserves_spans(self):
        doc = trace_to_dict(_golden_tracers())
        assert doc["schema"] == CHROME_TRACE_SCHEMA
        assert [r["rank"] for r in doc["ranks"]] == [0, 1]
        span = doc["ranks"][0]["spans"][2]
        assert span == {
            "category": "wait", "name": "barrier",
            "start_s": 1.3, "end_s": 1.45, "parent": 1,
        }


class TestPhaseReport:
    def test_shares_and_deviation(self):
        rep = PhaseReport(
            P=2, n=4,
            measured_us={"local_sort": 30.0, "transfer": 70.0},
            predicted_us={"local_sort": 50.0, "transfer": 50.0},
        )
        assert rep.share("measured", "transfer") == pytest.approx(0.7)
        assert rep.deviation("transfer") == pytest.approx(1.4)
        assert rep.deviation("merge") is None

    def test_describe_lists_sources(self):
        rep = build_phase_report(tracers=_golden_tracers(), n=4)
        text = rep.describe()
        assert "measured" in text and "local_sort" in text
        assert "counters" in text

    def test_as_dict_json_ready(self):
        rep = build_phase_report(tracers=_golden_tracers(), n=4)
        doc = json.loads(json.dumps(rep.as_dict()))
        assert doc["P"] == 2 and doc["categories"] == list(CATEGORIES)
        assert doc["counters"]["messages"] == 4


class TestRuntimeInstrumentation:
    @pytest.mark.parametrize("backend", ["threads", "procs"])
    def test_spmd_sort_records_phases_and_counters(self, backend):
        """Unfused/world mode records the classic five-phase breakdown."""
        P, n = 4, 256
        keys = make_keys(P * n, seed=5)

        def prog(c):
            c.tracer = Tracer(c.rank)
            out = spmd_bitonic_sort(
                c, keys[c.rank * n : (c.rank + 1) * n],
                fused=False, grouped=False,
            )
            return out, c.tracer

        results = run_spmd(P, prog, backend=backend)
        np.testing.assert_array_equal(
            np.concatenate([o for o, _ in results]), np.sort(keys)
        )
        for rank, (_, tr) in enumerate(results):
            assert tr.rank == rank
            totals = tr.totals()
            for cat in ("local_sort", "address", "pack", "transfer",
                        "unpack", "merge"):
                assert cat in totals, f"rank {rank} missing {cat!r} spans"
            assert tr.counters["remaps"] >= 1
            assert tr.counters["coll.alltoallv"] == tr.counters["remaps"]
            assert tr.counters["coll.slots"] == P * tr.counters["coll.alltoallv"]
            assert tr.counters["bytes_sent"] > 0

    @pytest.mark.parametrize("backend", ["threads", "procs"])
    def test_fused_sort_has_no_unpack_spans(self, backend):
        """The fused default collapses pack/transfer/unpack into one
        collective: the unpack span disappears and every remap records a
        fused collective (zero-copy on both bundled backends)."""
        P, n = 4, 256
        keys = make_keys(P * n, seed=5)

        def prog(c):
            c.tracer = Tracer(c.rank)
            out = spmd_bitonic_sort(c, keys[c.rank * n : (c.rank + 1) * n])
            return out, c.tracer

        results = run_spmd(P, prog, backend=backend)
        np.testing.assert_array_equal(
            np.concatenate([o for o, _ in results]), np.sort(keys)
        )
        for _, tr in results:
            totals = tr.totals()
            assert "unpack" not in totals
            for cat in ("local_sort", "address", "pack", "transfer", "merge"):
                assert cat in totals
            assert tr.counters["coll.fused"] == tr.counters["remaps"]
            assert tr.counters["coll.fused_direct"] == tr.counters["remaps"]
            assert tr.counters.get("coll.alltoallv", 0) == 0

    @settings(max_examples=5, deadline=None)
    @given(seed=st.integers(0, 2**16), P=st.sampled_from([2, 4]))
    def test_span_totals_bounded_by_wall_threads(self, seed, P):
        """Property: every rank's exclusive category totals sum to its
        traced wall time, which is bounded by the end-to-end wall time."""
        keys = make_keys(P * 128, seed=seed)
        report = sort(keys, P, backend="threads", trace=True)
        assert len(report.tracers) == P
        for tr in report.tracers:
            totals = tr.totals()
            assert sum(totals.values()) == pytest.approx(tr.wall(), rel=1e-6)
            # Loose upper bound: traced spans happen inside the measured
            # end-to-end window (plus scheduler noise headroom).
            assert tr.wall() <= report.wall_seconds + 0.05

    def test_span_totals_bounded_by_wall_procs(self):
        P = 2
        keys = make_keys(P * 128, seed=9)
        report = sort(keys, P, backend="procs", trace=True)
        for tr in report.tracers:
            assert sum(tr.totals().values()) == pytest.approx(
                tr.wall(), rel=1e-6
            )
            assert tr.wall() <= report.wall_seconds + 0.1


class TestZeroOverhead:
    def test_noop_span_is_shared_singleton(self):
        assert trace_span(None, "pack") is trace_span(None, "transfer")

    @pytest.mark.parametrize("backend", ["threads"])
    def test_untraced_sort_touches_no_trace_machinery(
        self, backend, monkeypatch
    ):
        """With no tracer armed, the instrumented paths must not construct
        a single span object or begin() call — booby-trap both and run."""

        def boom(*a, **k):
            raise AssertionError("trace machinery touched on untraced path")

        monkeypatch.setattr(recorder_module._Span, "__init__", boom)
        monkeypatch.setattr(recorder_module.Tracer, "begin", boom)
        P, n = 2, 128
        keys = make_keys(P * n, seed=1)

        def prog(c):
            return spmd_bitonic_sort(c, keys[c.rank * n : (c.rank + 1) * n])

        parts = run_spmd(P, prog, backend=backend)
        np.testing.assert_array_equal(np.concatenate(parts), np.sort(keys))


class TestSendrecvSpecialization:
    @pytest.mark.parametrize("backend", ["threads", "procs"])
    def test_pairwise_exchange_correct(self, backend):
        P = 4

        def prog(c):
            partner = c.rank ^ 1
            got = c.sendrecv(np.full(4, c.rank, dtype=np.int64),
                             partner, partner)
            return got

        results = run_spmd(P, prog, backend=backend)
        for rank, got in enumerate(results):
            np.testing.assert_array_equal(
                got, np.full(4, rank ^ 1, dtype=np.int64)
            )

    @pytest.mark.parametrize("backend", ["threads", "procs"])
    def test_none_send_matched_pattern(self, backend):
        """One side of a matched pair may have nothing to send."""
        P = 2

        def prog(c):
            send = np.arange(3) if c.rank == 0 else None
            return c.sendrecv(send, c.rank ^ 1, c.rank ^ 1)

        r0, r1 = run_spmd(P, prog, backend=backend)
        assert r0 is None
        np.testing.assert_array_equal(r1, np.arange(3))

    def test_specialized_cheaper_than_fallback_threads(self):
        """The backend override must beat the size-wide Comm fallback —
        asserted through the trace counters, not timing."""
        P = 4

        def prog(c):
            partner = c.rank ^ 1
            payload = np.full(8, c.rank, dtype=np.int64)
            c.tracer = Tracer(c.rank)
            fast = c.sendrecv(payload, partner, partner)
            fast_counters = dict(c.tracer.counters)
            c.tracer = Tracer(c.rank)
            slow = Comm.sendrecv(c, payload, partner, partner)
            slow_counters = dict(c.tracer.counters)
            return fast, slow, fast_counters, slow_counters

        for rank, (fast, slow, fc, sc) in enumerate(
            run_spmd(P, prog, backend="threads")
        ):
            np.testing.assert_array_equal(fast, slow)
            # Pairwise: one descriptor slot, no world-wide collective.
            assert fc["coll.sendrecv"] == 1
            assert fc["coll.slots"] == 1
            assert "coll.alltoallv" not in fc
            # Fallback: a full alltoallv, one slot per destination.
            assert sc["coll.alltoallv"] == 1
            assert sc["coll.slots"] == P
            assert fc["coll.slots"] < sc["coll.slots"]
            assert fc["messages"] == sc["messages"] == 1

    def test_procs_sendrecv_counters(self):
        P = 2

        def prog(c):
            c.tracer = Tracer(c.rank)
            c.sendrecv(np.arange(4), c.rank ^ 1, c.rank ^ 1)
            return dict(c.tracer.counters)

        for counters in run_spmd(P, prog, backend="procs"):
            assert counters["coll.sendrecv"] == 1
            assert counters["coll.slots"] == 1
            assert counters["messages"] == 1
            assert "coll.alltoallv" not in counters

    def test_sendrecv_then_collective_no_stale_reads(self):
        """A sendrecv followed by an alltoallv (and vice versa) must not
        leak descriptors between the two protocols on the procs backend."""
        P = 4

        def prog(c):
            ring_next, ring_prev = (c.rank + 1) % P, (c.rank - 1) % P
            got = c.sendrecv(np.full(2, c.rank), ring_next, ring_prev)
            buckets = [np.full(1, c.rank * 10 + q) for q in range(P)]
            received = c.alltoallv(buckets)
            got2 = c.sendrecv(np.full(2, c.rank + 100), ring_next, ring_prev)
            return got, [r[0] for r in received], got2

        for rank, (got, recv, got2) in enumerate(
            run_spmd(P, prog, backend="procs")
        ):
            prev = (rank - 1) % P
            np.testing.assert_array_equal(got, np.full(2, prev))
            assert recv == [p * 10 + rank for p in range(P)]
            np.testing.assert_array_equal(got2, np.full(2, prev + 100))
