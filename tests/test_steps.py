"""Tests for the local compare-exchange engines."""

import numpy as np
import pytest

from repro.errors import LayoutError
from repro.layouts import blocked_layout, cyclic_layout, smart_layout
from repro.network.sequential import bitonic_sort_network, compare_exchange_step
from repro.network.steps import (
    compare_exchange_general,
    compare_exchange_local,
    run_steps_general,
)


def _global_state(rng, N):
    """A random global array indexed by absolute address."""
    return rng.integers(0, 10_000, N).astype(np.int64)


class TestGeneralEngine:
    def test_matches_sequential_step(self, rng):
        """Executing a step on a full partition (P=1 view) must equal the
        sequential network step."""
        N = 64
        glob = _global_state(rng, N)
        expect = glob.copy()
        compare_exchange_step(expect, stage=4, step=2)
        local = glob.copy()
        compare_exchange_general(local, np.arange(N), stage=4, step=2)
        np.testing.assert_array_equal(local, expect)

    def test_partitioned_blocked(self, rng):
        """Blocked partitions: the last lg n steps of any stage are local
        and produce the sequential result."""
        N, P = 64, 4
        lay = blocked_layout(N, P)
        glob = _global_state(rng, N)
        expect = glob.copy()
        for stage, step in [(5, 4), (5, 3), (5, 2), (5, 1)]:
            compare_exchange_step(expect, stage, step)
        for r in range(P):
            absaddr = lay.absolute_addresses(r)
            local = glob[absaddr].copy()
            run_steps_general(local, absaddr, [(5, 4), (5, 3), (5, 2), (5, 1)])
            np.testing.assert_array_equal(local, expect[absaddr])

    def test_detects_nonlocal_step(self, rng):
        """Step lg n + 1 under blocked needs communication — the engine
        must refuse, not silently corrupt."""
        N, P = 64, 4
        lay = blocked_layout(N, P)
        absaddr = lay.absolute_addresses(0)
        data = _global_state(rng, N)[absaddr].copy()
        with pytest.raises(LayoutError, match="not local"):
            compare_exchange_general(data, absaddr, stage=5, step=5)

    def test_arbitrary_local_order(self, rng):
        """The general engine works for shuffled local placements."""
        N = 32
        glob = _global_state(rng, N)
        expect = glob.copy()
        compare_exchange_step(expect, stage=3, step=1)
        perm = rng.permutation(N)
        data = glob[perm].copy()
        compare_exchange_general(data, perm, stage=3, step=1)
        np.testing.assert_array_equal(data, expect[perm])


class TestLocalEngine:
    @pytest.mark.parametrize(
        "layout_fn,stage,step",
        [
            (lambda N, P: blocked_layout(N, P), 5, 2),
            (lambda N, P: cyclic_layout(N, P), 5, 5),
            (lambda N, P: smart_layout(N, P, 5, 5), 5, 5),
        ],
    )
    def test_matches_general_engine(self, layout_fn, stage, step, rng):
        N, P = 64, 4
        lay = layout_fn(N, P)
        glob = _global_state(rng, N)
        for r in range(P):
            absaddr = lay.absolute_addresses(r)
            lb = lay.local_bit_of_abs_bit(step - 1)
            assert lb is not None
            fast = glob[absaddr].copy()
            slow = glob[absaddr].copy()
            compare_exchange_local(fast, absaddr, stage, step, lb)
            compare_exchange_general(slow, absaddr, stage, step)
            np.testing.assert_array_equal(fast, slow)

    def test_rejects_wrong_local_bit(self, rng):
        N, P = 64, 4
        lay = blocked_layout(N, P)
        absaddr = lay.absolute_addresses(0)
        data = _global_state(rng, N)[absaddr].copy()
        with pytest.raises(LayoutError, match="does not map"):
            compare_exchange_local(data, absaddr, stage=4, step=2, local_bit=3)

    def test_rejects_out_of_range_bit(self, rng):
        N, P = 64, 4
        lay = blocked_layout(N, P)
        absaddr = lay.absolute_addresses(0)
        data = _global_state(rng, N)[absaddr].copy()
        with pytest.raises(LayoutError, match="out of range"):
            compare_exchange_local(data, absaddr, stage=4, step=2, local_bit=9)


class TestEndToEndViaSteps:
    def test_full_network_on_one_processor(self, rng):
        """Running every column through the general engine sorts."""
        N = 128
        glob = _global_state(rng, N)
        data = glob.copy()
        from repro.network.addressing import network_columns

        run_steps_general(data, np.arange(N), network_columns(N))
        np.testing.assert_array_equal(data, np.sort(glob))
        np.testing.assert_array_equal(bitonic_sort_network(glob), np.sort(glob))
