"""Tests for repro.utils.validation."""

import pytest

from repro.errors import ConfigurationError, SizeError
from repro.utils.validation import require, require_power_of_two, require_sizes


class TestRequire:
    def test_passes(self):
        require(True, "never raised")

    def test_raises_with_message(self):
        with pytest.raises(ConfigurationError, match="boom"):
            require(False, "boom")


class TestRequirePowerOfTwo:
    def test_accepts_and_returns(self):
        assert require_power_of_two(8, "x") == 8

    @pytest.mark.parametrize("bad", [0, -2, 3, 12])
    def test_rejects_non_powers(self, bad):
        with pytest.raises(SizeError, match="x"):
            require_power_of_two(bad, "x")

    @pytest.mark.parametrize("bad", [2.0, "8", True, None])
    def test_rejects_non_ints(self, bad):
        with pytest.raises(SizeError):
            require_power_of_two(bad, "x")


class TestRequireSizes:
    def test_returns_triple(self):
        assert require_sizes(64, 4) == (64, 4, 16)

    def test_one_key_per_proc_allowed(self):
        assert require_sizes(8, 8) == (8, 8, 1)

    def test_more_procs_than_keys_rejected(self):
        with pytest.raises(SizeError, match="at least one key"):
            require_sizes(4, 8)

    def test_non_power_of_two_keys_rejected(self):
        with pytest.raises(SizeError):
            require_sizes(48, 4)

    def test_non_power_of_two_procs_rejected(self):
        with pytest.raises(SizeError):
            require_sizes(64, 3)
