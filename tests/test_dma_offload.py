"""Tests for the DMA-offload (communication overlap) machine option."""

from dataclasses import replace

import numpy as np
import pytest

from repro.machine import Machine, Message
from repro.model.machines import MEIKO_CS2
from repro.sorts import SmartBitonicSort
from repro.utils.rng import make_keys

DMA = replace(MEIKO_CS2, dma_offload=True)


class TestExchangeWithDma:
    def test_cpu_pays_only_initiation(self):
        m = Machine(2, DMA)
        m.exchange([Message(0, 1, np.arange(10_000, dtype=np.uint32))])
        # Sender CPU cost is just o, not o + (k-1)G.
        assert m.procs[0].breakdown.times["transfer"] == pytest.approx(m.net.o)

    def test_wire_time_unchanged(self):
        """The receiver still gets the data after the full injection time."""
        plain = Machine(2, MEIKO_CS2)
        dma = Machine(2, DMA)
        payload = np.arange(10_000, dtype=np.uint32)
        plain.exchange([Message(0, 1, payload)])
        dma.exchange([Message(0, 1, payload)])
        assert dma.procs[1].clock == pytest.approx(plain.procs[1].clock)

    def test_sender_frees_up_earlier(self):
        plain = Machine(2, MEIKO_CS2)
        dma = Machine(2, DMA)
        payload = np.arange(10_000, dtype=np.uint32)
        plain.exchange([Message(0, 1, payload)])
        dma.exchange([Message(0, 1, payload)])
        assert dma.procs[0].clock < plain.procs[0].clock

    def test_coprocessor_serializes_injections(self):
        """Two large messages cannot inject simultaneously: the second
        arrival is a full injection later than the first."""
        m = Machine(3, DMA)
        payload = np.arange(50_000, dtype=np.uint32)
        m.exchange([Message(0, 1, payload), Message(0, 2, payload)])
        inject = (payload.size * 4 - 1) * m.net.G
        t1 = m.procs[1].clock - m.net.o
        t2 = m.procs[2].clock - m.net.o
        assert t2 - t1 == pytest.approx(inject, rel=1e-6)


class TestSortWithDma:
    def test_sorts_correctly(self):
        keys = make_keys(2048, seed=17)
        SmartBitonicSort(spec=DMA).run(keys, 8, verify=True)

    def test_reduces_transfer_busy_time(self):
        keys = make_keys(16 * 8192, seed=18)
        plain = SmartBitonicSort().run(keys, 16).stats
        dma = SmartBitonicSort(spec=DMA).run(keys, 16).stats
        assert (dma.mean_breakdown.times["transfer"]
                < 0.5 * plain.mean_breakdown.times["transfer"])
        # Makespan also improves: the remap barrier waits for arrivals,
        # but senders' busy periods no longer serialize the injections
        # in front of the latency hop.
        assert dma.elapsed_us <= plain.elapsed_us

    def test_counts_unaffected(self):
        keys = make_keys(2048, seed=19)
        plain = SmartBitonicSort().run(keys, 8).stats
        dma = SmartBitonicSort(spec=DMA).run(keys, 8).stats
        assert (plain.remaps, plain.volume_per_proc, plain.messages_per_proc) == (
            dma.remaps, dma.volume_per_proc, dma.messages_per_proc
        )
