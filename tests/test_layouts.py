"""Tests for the layout machinery: BitFieldLayout, blocked, cyclic, smart."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError, LayoutError
from repro.layouts import (
    BitFieldLayout,
    Field,
    bits_changed,
    blocked_layout,
    cyclic_layout,
    kept_fraction,
    smart_layout,
    smart_params,
)
from repro.utils.bits import ilog2


def _size_pairs():
    return st.tuples(
        st.sampled_from([8, 16, 32, 64, 256, 1024]),
        st.sampled_from([2, 4, 8, 16]),
    ).filter(lambda t: t[1] <= t[0])


class TestBitFieldLayoutValidation:
    def test_missing_bits_rejected(self):
        with pytest.raises(LayoutError, match="do not cover"):
            BitFieldLayout(16, 4, [Field(0, 2, "local", 0)])

    def test_overlapping_bits_rejected(self):
        with pytest.raises(LayoutError):
            BitFieldLayout(
                16, 4,
                [Field(0, 2, "local", 0), Field(1, 3, "proc", 0)],
            )

    def test_bad_part_rejected(self):
        with pytest.raises(LayoutError):
            Field(0, 2, "nope", 0)

    def test_proc_width_must_match(self):
        # All 4 bits to local: proc part unfilled.
        with pytest.raises(LayoutError):
            BitFieldLayout(16, 4, [Field(0, 4, "local", 0)])


class TestBlockedCyclic:
    def test_blocked_definition4(self):
        """Key i -> processor floor(i / n)."""
        lay = blocked_layout(32, 4)
        for i in range(32):
            assert lay.proc_of(i) == i // 8
            assert lay.local_of(i) == i % 8

    def test_cyclic_definition5(self):
        """Key i -> processor (i mod P)."""
        lay = cyclic_layout(32, 4)
        for i in range(32):
            assert lay.proc_of(i) == i % 4
            assert lay.local_of(i) == i // 4

    def test_blocked_pattern(self):
        assert blocked_layout(32, 4).pattern() == "PP..."

    def test_cyclic_pattern(self):
        assert cyclic_layout(32, 4).pattern() == "...PP"

    def test_blocked_local_bits(self):
        lay = blocked_layout(32, 4)
        assert [lay.local_bit_of_abs_bit(b) for b in range(5)] == [0, 1, 2, None, None]

    def test_cyclic_local_bits(self):
        lay = cyclic_layout(32, 4)
        assert [lay.local_bit_of_abs_bit(b) for b in range(5)] == [None, None, 0, 1, 2]

    def test_single_processor(self):
        lay = blocked_layout(16, 1)
        assert lay.proc_of(np.arange(16)).max() == 0

    def test_one_key_per_proc(self):
        lay = blocked_layout(8, 8)
        np.testing.assert_array_equal(lay.proc_of(np.arange(8)), np.arange(8))
        assert lay.local_of(5) == 0


class TestLayoutBijectivity:
    @given(_size_pairs())
    def test_blocked_cyclic_roundtrip(self, sizes):
        N, P = sizes
        for lay in (blocked_layout(N, P), cyclic_layout(N, P)):
            a = np.arange(N, dtype=np.int64)
            proc, local = lay.to_relative(a)
            back = lay.to_absolute(proc, local)
            np.testing.assert_array_equal(back, a)
            # Each processor holds exactly n distinct locals.
            for r in range(P):
                locs = local[proc == r]
                assert np.array_equal(np.sort(locs), np.arange(N // P))

    def test_absolute_addresses_inverse(self):
        lay = cyclic_layout(64, 8)
        for r in range(8):
            aa = lay.absolute_addresses(r)
            np.testing.assert_array_equal(lay.proc_of(aa), r)
            np.testing.assert_array_equal(lay.local_of(aa), np.arange(8))

    def test_absolute_addresses_range_check(self):
        with pytest.raises(LayoutError):
            blocked_layout(16, 4).absolute_addresses(4)


class TestSmartParams:
    def test_inside(self):
        # N=256, P=16: lg n = 4.  Remap at (5, 5): inside, t = 1.
        p = smart_params(256, 16, 5, 5)
        assert (p.k, p.s, p.a, p.b, p.t) == (1, 5, 0, 4, 1)
        assert not p.is_crossing and not p.is_last

    def test_crossing(self):
        p = smart_params(256, 16, 5, 1)
        assert (p.k, p.s, p.a, p.b, p.t) == (1, 1, 1, 3, 3)
        assert p.is_crossing

    def test_last(self):
        p = smart_params(256, 16, 8, 2)
        assert (p.k, p.s, p.a, p.b, p.t) == (4, 2, 4, 0, 4)
        assert p.is_last

    def test_last_remap_is_blocked(self):
        lay = smart_layout(256, 16, 8, 2)
        assert lay == blocked_layout(256, 16)

    def test_rejects_outside_region(self):
        with pytest.raises(ConfigurationError):
            smart_params(256, 16, 4, 2)  # stage <= lg n
        with pytest.raises(ConfigurationError):
            smart_params(256, 16, 9, 2)  # stage > lg N
        with pytest.raises(ConfigurationError):
            smart_params(256, 16, 5, 6)  # step > stage


class TestSmartLayout:
    def test_figure_3_4_patterns(self):
        """The absolute-address bit patterns of Figure 3.4 (N=256, P=16)."""
        expected = {
            (5, 5): "PPP....P",   # remap 0
            (5, 1): "PP...PP.",   # remap 1
            (6, 3): "P.PPP...",   # remap 2
            (7, 6): "PP....PP",   # remap 3
            (7, 2): "..PPPP..",   # remap 4
            (8, 6): "PP....PP",   # remap 5
            (8, 2): "PPPP....",   # remap 6 (last: blocked)
        }
        for (stage, step), pattern in expected.items():
            assert smart_layout(256, 16, stage, step).pattern() == pattern

    @given(_size_pairs())
    def test_bijective(self, sizes):
        N, P = sizes
        if N // P < 2:
            return
        lgn, lgP = ilog2(N // P), ilog2(P)
        a = np.arange(N, dtype=np.int64)
        for k in range(1, lgP + 1):
            stage = lgn + k
            for step in range(1, stage + 1):
                lay = smart_layout(N, P, stage, step)
                proc, local = lay.to_relative(a)
                np.testing.assert_array_equal(lay.to_absolute(proc, local), a)
                assert proc.min() == 0 and proc.max() == P - 1
                assert np.bincount(proc).tolist() == [N // P] * P

    def test_lemma2_keeps_lgn_steps_local(self):
        """After a smart remap the next lg n steps are executable locally."""
        N, P = 1024, 8
        lgn = ilog2(N // P)
        from repro.layouts.schedule import smart_schedule

        sched = smart_schedule(N, P)
        for phase in sched.phases:
            for stage, step in phase.columns:
                assert phase.layout.step_is_local(step), (stage, step)


class TestBitsChanged:
    def test_blocked_to_cyclic_changes_lgP(self):
        # All lg P local bits become processor bits when lg n >= lg P.
        old = blocked_layout(256, 16)
        new = cyclic_layout(256, 16)
        assert bits_changed(old, new) == 4
        assert kept_fraction(old, new) == 1 / 16

    def test_identity_changes_nothing(self):
        lay = blocked_layout(64, 4)
        assert bits_changed(lay, lay) == 0
        assert kept_fraction(lay, lay) == 1.0

    def test_mismatched_machines_rejected(self):
        with pytest.raises(LayoutError):
            bits_changed(blocked_layout(64, 4), blocked_layout(128, 4))

    def test_symmetric(self):
        a = blocked_layout(256, 16)
        b = smart_layout(256, 16, 5, 1)
        assert bits_changed(a, b) == bits_changed(b, a)
