"""Tests for the wire front end (:mod:`repro.service.net`).

Covers the frame codec (CRC, magic, truncation — damage is always a
typed :class:`FrameCorruptError`), the typed-error wire round-trip, the
server/client sort path (frame and shm payloads), request idempotency
under retried ids, deadline propagation onto the wire, fault-injected
corruption, and clean teardown with zero leaked shm segments.
"""

import socket
import threading
import time

import numpy as np
import pytest

from repro.errors import (
    AdmissionError,
    FrameCorruptError,
    RequestTimeoutError,
    ServiceError,
    ShardUnavailableError,
)
from repro.faults import FaultPlan, NetFaultInjector, corrupt_frame_bytes
from repro.service import SortClient, SortServer, SortService
from repro.service.net import (
    HEADER_SIZE,
    MAGIC,
    MIN_PROTO_VERSION,
    PROTO_VERSION,
    FrameType,
    decode_frame,
    encode_frame,
    error_from_meta,
    error_to_meta,
    host_token,
    parse_header,
    shm_segments,
    validate_payload,
)
from repro.utils.rng import make_keys


class TestFrameCodec:
    def test_roundtrip(self):
        frame = encode_frame(
            FrameType.SORT, {"id": "abc", "n": 3}, b"\x01\x02\x03", seq=7
        )
        ftype, meta, body = decode_frame(frame)
        assert ftype == FrameType.SORT
        assert meta == {"id": "abc", "n": 3}
        assert body == b"\x01\x02\x03"

    def test_header_is_24_bytes(self):
        frame = encode_frame(FrameType.HELLO, {})
        assert frame[:4] == MAGIC
        assert HEADER_SIZE == 24

    def test_flipped_payload_bit_fails_crc(self):
        frame = bytearray(encode_frame(FrameType.SORT, {"id": "x"}, b"abc"))
        frame[HEADER_SIZE + 1] ^= 0x10
        with pytest.raises(FrameCorruptError) as exc:
            decode_frame(bytes(frame))
        assert exc.value.detail == "crc"

    def test_bad_magic(self):
        frame = bytearray(encode_frame(FrameType.SORT, {}))
        frame[0] ^= 0xFF
        with pytest.raises(FrameCorruptError) as exc:
            decode_frame(bytes(frame))
        assert exc.value.detail == "magic"

    def test_bad_version(self):
        frame = bytearray(encode_frame(FrameType.SORT, {}))
        frame[4] = 99
        with pytest.raises(FrameCorruptError) as exc:
            decode_frame(bytes(frame))
        assert exc.value.detail == "version"

    def test_v1_header_still_decodes(self):
        """Version tolerance: a frame stamped with the oldest supported
        protocol version decodes cleanly (the header sits outside the
        CRC-covered region, so patching the byte needs no recompute)."""
        frame = bytearray(
            encode_frame(FrameType.SORT, {"id": "v1"}, b"\x01\x02")
        )
        assert frame[4] == PROTO_VERSION
        frame[4] = MIN_PROTO_VERSION
        ftype, meta, body = decode_frame(bytes(frame))
        assert ftype == FrameType.SORT
        assert meta == {"id": "v1"}
        assert body == b"\x01\x02"

    def test_truncated_header(self):
        with pytest.raises(FrameCorruptError) as exc:
            parse_header(b"RBSF\x01")
        assert exc.value.detail == "truncated"

    def test_truncated_payload(self):
        frame = encode_frame(FrameType.SORT, {"id": "x"}, b"abcdef")
        with pytest.raises(FrameCorruptError) as exc:
            decode_frame(frame[:-2])
        assert exc.value.detail == "truncated"

    def test_implausible_lengths_rejected_before_allocation(self):
        import struct

        header = struct.pack(
            "!4sBBHIII", MAGIC, 1, FrameType.SORT, 0, 0, 1 << 30, 0
        ) + struct.pack("!I", 0)
        with pytest.raises(FrameCorruptError):
            parse_header(header)

    def test_garbage_meta_is_typed(self):
        import zlib

        payload = b"not json at all"
        frame = encode_frame(FrameType.SORT, {}, b"")
        with pytest.raises(FrameCorruptError) as exc:
            validate_payload(
                FrameType.SORT, payload, len(payload),
                zlib.crc32(payload),
            )
        assert exc.value.detail == "meta"

    def test_corrupt_frame_bytes_lands_past_header(self):
        frame = encode_frame(FrameType.SORT, {"id": "y"}, b"\x00" * 64)
        rng = np.random.default_rng(0)
        bad = corrupt_frame_bytes(frame, rng)
        assert bad != frame
        assert bad[:HEADER_SIZE] == frame[:HEADER_SIZE]
        with pytest.raises(FrameCorruptError):
            decode_frame(bad)


class TestWireErrors:
    @pytest.mark.parametrize(
        "exc",
        [
            AdmissionError("queue full", reason="queue-full"),
            RequestTimeoutError("late", deadline_s=1.5, elapsed_s=2.0,
                                stage="admission"),
            FrameCorruptError("bit flip", detail="crc"),
            ShardUnavailableError("down"),
            ServiceError("generic"),
        ],
    )
    def test_roundtrip_preserves_type(self, exc):
        back = error_from_meta(error_to_meta(exc))
        assert type(back) is type(exc)
        assert str(exc) in str(back)

    def test_roundtrip_preserves_diagnostics(self):
        back = error_from_meta(error_to_meta(
            RequestTimeoutError("late", deadline_s=1.5, elapsed_s=2.0,
                                stage="admission")
        ))
        assert back.stage == "admission"
        assert back.deadline_s == 1.5
        back = error_from_meta(error_to_meta(
            AdmissionError("no", reason="tenant-rate")
        ))
        assert back.reason == "tenant-rate"

    def test_unknown_error_degrades_to_service_error(self):
        back = error_from_meta({"error": "WeirdError", "message": "hm"})
        assert type(back) is ServiceError
        assert "WeirdError" in str(back)


@pytest.fixture(scope="module")
def server():
    """One live server over a real SortService for the wire tests."""
    svc = SortService(queue_depth=16, batch_max=4)
    srv = SortServer(svc, name="test-shard", own_service=True)
    srv.start()
    yield srv
    srv.close()


@pytest.fixture()
def client(server):
    with SortClient(server.address, via_shm=False, retries=2,
                    timeout_s=10.0) as cli:
        yield cli


def _raw_recv_frame(sock):
    buf = b""
    while len(buf) < HEADER_SIZE:
        buf += sock.recv(HEADER_SIZE - len(buf))
    ftype, _flags, _seq, meta_len, body_len, crc = parse_header(buf)
    payload = b""
    while len(payload) < meta_len + body_len:
        payload += sock.recv(meta_len + body_len - len(payload))
    meta, body = validate_payload(ftype, payload, meta_len, crc)
    return ftype, meta, body


class TestSortOverTheWire:
    def test_sorts_and_verifies(self, client):
        keys = make_keys(4096, seed=1)
        out = client.sort(keys, deadline_s=60.0, backend="threads", P=2)
        assert np.array_equal(out.sorted_keys, np.sort(keys))
        assert out.shard == "test-shard"
        assert out.attempts == 1
        assert out.via_shm is False
        assert out.server["backend"] == "threads"

    def test_handshake_learns_the_server(self, client):
        client.health()
        assert client._server_info["server"] == "test-shard"
        assert client._server_info["host_token"] == host_token()

    def test_shm_payload_roundtrip_and_cleanup(self, server):
        before = shm_segments()
        with SortClient(server.address, via_shm=True) as cli:
            keys = make_keys(4096, seed=2)
            out = cli.sort(keys, deadline_s=60.0, backend="threads", P=2)
        assert out.via_shm is True
        assert np.array_equal(out.sorted_keys, np.sort(keys))
        assert shm_segments() == before  # the client unlinked its segment

    def test_health_rpc(self, client):
        answer = client.health()
        assert answer["server"] == "test-shard"
        assert answer["healthy"] is True
        assert answer["served"] >= 0

    def test_network_trace_spans_use_documented_categories(self, client):
        from repro.machine.metrics import CATEGORIES

        keys = make_keys(2048, seed=3)
        out = client.sort(keys, deadline_s=60.0, backend="threads", P=2,
                          trace=True)
        assert out.tracer is not None and out.tracer.spans
        for span in out.tracer.spans:
            assert span[0] in CATEGORIES

    def test_retried_request_id_sorts_once(self, server):
        """Idempotency: the same id sent twice runs one sort."""
        served_before = server.service.report().served
        keys = make_keys(1024, seed=4)
        meta = {
            "id": "deadbeef" * 4,
            "dtype": str(keys.dtype.str),
            "backend": "threads",
            "P": 2,
        }
        with socket.create_connection(server.address, timeout=30.0) as s:
            s.sendall(encode_frame(FrameType.HELLO, {"client": "raw"}))
            ftype, _m, _b = _raw_recv_frame(s)
            assert ftype == FrameType.WELCOME
            frame = encode_frame(FrameType.SORT, meta, keys.tobytes())
            s.sendall(frame)
            ftype1, meta1, body1 = _raw_recv_frame(s)
            s.sendall(frame)  # the retry, same id
            ftype2, meta2, body2 = _raw_recv_frame(s)
        assert ftype1 == ftype2 == FrameType.RESULT
        assert body1 == body2
        assert np.array_equal(
            np.frombuffer(body1, dtype=keys.dtype), np.sort(keys)
        )
        assert server.service.report().served == served_before + 1

    def test_v1_sort_frame_defaults_to_smart(self, server):
        """Mixed-version round trip: a v1-era SORT frame — old version
        byte, no ``algorithm`` meta key — still sorts, and the server
        reads the absent key as its v1 meaning, ``"smart"``."""
        keys = make_keys(1024, seed=21)
        meta = {
            "id": "c" * 32,
            "dtype": str(keys.dtype.str),
            "backend": "threads",
            "P": 2,
        }
        frame = bytearray(encode_frame(FrameType.SORT, meta, keys.tobytes()))
        frame[4] = MIN_PROTO_VERSION
        with socket.create_connection(server.address, timeout=30.0) as s:
            s.sendall(bytes(frame))
            ftype, rmeta, body = _raw_recv_frame(s)
        assert ftype == FrameType.RESULT
        assert rmeta["algorithm"] == "smart"
        assert np.array_equal(
            np.frombuffer(body, dtype=keys.dtype), np.sort(keys)
        )

    def test_algorithm_meta_round_trips(self, client):
        keys = make_keys(1 << 11, seed=22)
        out = client.sort(keys, algorithm="sample", backend="threads", P=2)
        assert out.server["algorithm"] == "sample"
        np.testing.assert_array_equal(out.sorted_keys, np.sort(keys))

    def test_auto_algorithm_is_planned_server_side(self, client):
        keys = make_keys(1 << 11, seed=23)
        out = client.sort(keys, algorithm="auto")
        assert out.server["algorithm"] in ("smart", "sample")
        np.testing.assert_array_equal(out.sorted_keys, np.sort(keys))

    def test_corrupt_request_answers_typed_not_silent(self, server):
        keys = make_keys(512, seed=5)
        frame = bytearray(encode_frame(
            FrameType.SORT,
            {"id": "f" * 32, "dtype": str(keys.dtype.str)},
            keys.tobytes(),
        ))
        frame[HEADER_SIZE + 3] ^= 0x01  # damage the checksummed region
        with socket.create_connection(server.address, timeout=30.0) as s:
            s.sendall(bytes(frame))
            ftype, meta, _body = _raw_recv_frame(s)
        assert ftype == FrameType.ERROR
        assert type(error_from_meta(meta)) is FrameCorruptError

    def test_spent_deadline_never_reaches_the_service(self, server):
        """Deadline propagation: a request whose budget is gone is
        refused typed, not sorted."""
        served_before = server.service.report().served
        meta = {
            "id": "a" * 32,
            "dtype": "<u4",
            "backend": "threads",
            "P": 2,
            "budget_s": 0.0,
        }
        keys = make_keys(1024, seed=6)
        with socket.create_connection(server.address, timeout=30.0) as s:
            s.sendall(encode_frame(FrameType.SORT, meta, keys.tobytes()))
            ftype, emeta, _body = _raw_recv_frame(s)
        assert ftype == FrameType.ERROR
        err = error_from_meta(emeta)
        assert type(err) is RequestTimeoutError
        assert err.stage == "admission"
        assert server.service.report().served == served_before

    def test_client_deadline_is_typed(self, client):
        with pytest.raises(RequestTimeoutError) as exc:
            client.sort(make_keys(1024, seed=7), deadline_s=1e-9)
        assert exc.value.stage in ("client", "admission")

    def test_unreachable_server_is_typed(self):
        cli = SortClient(("127.0.0.1", 1), retries=1, backoff_s=0.01,
                         timeout_s=0.5)
        with pytest.raises(ShardUnavailableError) as exc:
            cli.sort(make_keys(256, seed=8))
        assert exc.value.attempts == 2  # first try + one retry


class TestFaultInjectedServer:
    def test_always_corrupt_exhausts_retries_typed(self):
        plan = FaultPlan(seed=0, corrupt=1.0)
        svc = SortService(queue_depth=8, batch_max=2)
        srv = SortServer(svc, name="chaos-shard",
                         faults=NetFaultInjector(plan), own_service=True)
        addr = srv.start()
        try:
            cli = SortClient(addr, via_shm=False, retries=1,
                             backoff_s=0.01, timeout_s=5.0)
            with pytest.raises((ShardUnavailableError,
                                FrameCorruptError)):
                cli.sort(make_keys(512, seed=9), backend="threads", P=2)
            cli.close()
        finally:
            srv.close()

    def test_kill_is_abrupt_but_typed_for_clients(self):
        svc = SortService(queue_depth=8, batch_max=2)
        srv = SortServer(svc, name="doomed", own_service=True)
        addr = srv.start()
        cli = SortClient(addr, via_shm=False, retries=1, backoff_s=0.01,
                         timeout_s=2.0)
        out = cli.sort(make_keys(512, seed=10), backend="threads", P=2)
        assert np.all(np.diff(out.sorted_keys.astype(np.int64)) >= 0)
        srv.kill()
        with pytest.raises((ShardUnavailableError, RequestTimeoutError)):
            cli.sort(make_keys(512, seed=11), deadline_s=3.0,
                     backend="threads", P=2)
        cli.close()

    def test_concurrent_clients_one_instance(self, server):
        """One SortClient is safe across threads (per-thread conns)."""
        cli = SortClient(server.address, via_shm=False, timeout_s=30.0)
        errors = []

        def work(seed):
            try:
                keys = make_keys(1024, seed=seed)
                out = cli.sort(keys, deadline_s=60.0, backend="threads",
                               P=2)
                assert np.array_equal(out.sorted_keys, np.sort(keys))
            except Exception as exc:  # noqa: BLE001 — collected
                errors.append(exc)

        threads = [
            threading.Thread(target=work, args=(100 + i,))
            for i in range(6)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        cli.close()
        assert not errors
