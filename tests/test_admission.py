"""Tests for per-tenant admission control (:mod:`repro.service.admission`).

The ledger is pure bookkeeping (no sockets, no worlds), so these tests
pin its contract exactly: token buckets reject with ``tenant-rate``,
contended fair shares reject with ``tenant-share``, idle queues are
work-conserving, and every admit/release pair keeps the counts honest.
"""

import time

import pytest

from repro.errors import AdmissionError, ConfigurationError
from repro.service import DEFAULT_TENANT, TenantAdmission, TenantPolicy


class TestTenantPolicy:
    def test_defaults_are_unlimited(self):
        policy = TenantPolicy()
        assert policy.weight == 1.0
        assert policy.rate is None

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"weight": 0.0},
            {"weight": -1.0},
            {"rate": 0.0},
            {"rate": -5.0},
            {"burst": 0.5},
        ],
    )
    def test_invalid_policies_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            TenantPolicy(**kwargs)


class TestTokenBucket:
    def test_burst_then_rate_rejection(self):
        adm = TenantAdmission(
            {"metered": TenantPolicy(rate=5.0, burst=2.0)}
        )
        adm.admit("metered", queue_len=0, queue_depth=16)
        adm.admit("metered", queue_len=0, queue_depth=16)
        with pytest.raises(AdmissionError) as exc:
            adm.admit("metered", queue_len=0, queue_depth=16)
        assert exc.value.reason == "tenant-rate"

    def test_bucket_refills_with_time(self):
        adm = TenantAdmission(
            {"metered": TenantPolicy(rate=50.0, burst=1.0)}
        )
        adm.admit("metered", queue_len=0, queue_depth=16)
        with pytest.raises(AdmissionError):
            adm.admit("metered", queue_len=0, queue_depth=16)
        time.sleep(0.05)  # 50/s earns back >= 1 token in 50 ms
        adm.admit("metered", queue_len=0, queue_depth=16)

    def test_rate_binds_even_on_an_empty_queue(self):
        adm = TenantAdmission(
            {"metered": TenantPolicy(rate=0.001, burst=1.0)}
        )
        adm.admit("metered", queue_len=0, queue_depth=16)
        with pytest.raises(AdmissionError) as exc:
            adm.admit("metered", queue_len=0, queue_depth=16)
        assert exc.value.reason == "tenant-rate"

    def test_unmetered_tenant_never_rate_limited(self):
        adm = TenantAdmission()
        for _ in range(100):
            adm.admit(DEFAULT_TENANT, queue_len=0, queue_depth=16)


class TestFairShares:
    def test_work_conserving_below_contention(self):
        """An idle queue lets one tenant use every slot."""
        adm = TenantAdmission(contended_fraction=0.5)
        for i in range(7):  # occupancy stays below 8 * 0.5 until i >= 4
            if i >= 4:
                break
            adm.admit("hog", queue_len=i, queue_depth=8)

    def test_contended_share_rejects_the_hog_not_the_quiet(self):
        adm = TenantAdmission(contended_fraction=0.25)
        depth = 8
        # Two active equal-weight tenants: each is entitled to 4 slots.
        adm.admit("quiet", queue_len=0, queue_depth=depth)
        queued = 1
        rejected = None
        hog_held = 0
        for _ in range(depth):
            try:
                adm.admit("hog", queue_len=queued, queue_depth=depth)
                queued += 1
                hog_held += 1
            except AdmissionError as exc:
                rejected = exc
                break
        assert rejected is not None and rejected.reason == "tenant-share"
        assert hog_held == depth // 2  # the hog stopped at its half
        # The quiet tenant still has room under its own share.
        adm.admit("quiet", queue_len=queued, queue_depth=depth)
        stats = adm.stats()
        assert stats["quiet"]["queued"] == 2
        assert stats["hog"]["rejected_share"] >= 1

    def test_weighted_shares_are_proportional(self):
        adm = TenantAdmission(
            {
                "gold": TenantPolicy(weight=3.0),
                "bronze": TenantPolicy(weight=1.0),
            }
        )
        # Both tenants active: gold gets 3/4 of the slots, bronze 1/4.
        adm.admit("gold", queue_len=0, queue_depth=16)
        adm.admit("bronze", queue_len=1, queue_depth=16)
        assert adm.fair_share("gold", queue_depth=16) == 12
        assert adm.fair_share("bronze", queue_depth=16) == 4

    def test_share_floor_is_one_slot(self):
        policies = {f"t{i}": TenantPolicy() for i in range(32)}
        adm = TenantAdmission(policies)
        for name in policies:
            adm.admit(name, queue_len=0, queue_depth=4)
        # 32 active tenants on a 4-deep queue: ceil still floors at 1.
        assert adm.fair_share("t0", queue_depth=4) == 1

    def test_release_frees_the_share(self):
        adm = TenantAdmission(contended_fraction=0.0)  # always contended
        depth = 4
        # Sole active tenant: the whole queue is its share.
        for i in range(depth):
            adm.admit("a", queue_len=i, queue_depth=depth)
        with pytest.raises(AdmissionError):
            adm.admit("a", queue_len=depth, queue_depth=depth)
        adm.release("a")
        adm.admit("a", queue_len=depth - 1, queue_depth=depth)

    def test_stats_shape(self):
        adm = TenantAdmission({"a": TenantPolicy(weight=2.0)})
        adm.admit("a", queue_len=0, queue_depth=8)
        stats = adm.stats()
        assert stats["a"]["queued"] == 1
        assert stats["a"]["admitted"] == 1
        assert stats["a"]["rejected_rate"] == 0
        assert stats["a"]["rejected_share"] == 0
        assert stats["a"]["weight"] == 2.0

    def test_release_of_unknown_tenant_is_harmless(self):
        TenantAdmission().release("never-admitted")

    def test_bad_contended_fraction_rejected(self):
        with pytest.raises(ConfigurationError):
            TenantAdmission(contended_fraction=1.5)
