"""Tests for the persistent sort service (:mod:`repro.service`).

Covers the warm world pool, the LogGP request planner (including the
fault-safety clamp pinned as a hypothesis property), admission control,
same-shape batching, per-request tracing with the queue-wait span, the
calibrated host profile round-trip, and the ``sort(service=...)`` front
door bridge.
"""

import threading
import time

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.api import sort
from repro.errors import (
    AdmissionError,
    ConfigurationError,
    RequestTimeoutError,
    ServiceClosedError,
    ServiceError,
)
from repro.faults import FaultPlan
from repro.service import (
    BenchHistory,
    HostProfile,
    PlanDecision,
    Planner,
    ServiceReport,
    SortService,
    TenantAdmission,
    TenantPolicy,
    WorldPool,
)
from repro.utils.rng import make_keys


@pytest.fixture(scope="module")
def service():
    """One shared service for the read-only request tests (module-scoped:
    world spawning is the expensive part)."""
    svc = SortService(trace=False)
    yield svc
    svc.close()


class TestWorldPool:
    def test_acquire_release_reuses(self):
        with WorldPool() as pool:
            w1 = pool.acquire("threads", 2)
            pool.release(w1)
            w2 = pool.acquire("threads", 2)
            assert w2 is w1
            pool.release(w2)
            assert pool.stats()["reused"] == 1

    def test_distinct_shapes_distinct_worlds(self):
        with WorldPool() as pool:
            a = pool.acquire("threads", 2)
            b = pool.acquire("threads", 4)
            assert a is not b and (a.size, b.size) == (2, 4)
            pool.release(a)
            pool.release(b)
            assert pool.idle_count() == 2

    def test_dead_world_replaced_on_acquire(self):
        """Satellite (c): a dead pooled world is closed and replaced
        without the caller ever seeing it."""
        with WorldPool() as pool:
            w = pool.acquire("procs", 2)
            pool.release(w)
            w._procs[1].terminate()  # a rank dies while the world idles
            w._procs[1].join(5.0)
            fresh = pool.acquire("procs", 2)
            try:
                assert fresh is not w
                assert fresh.healthy()
            finally:
                pool.release(fresh)
            assert pool.stats()["restarts"] == 1

    def test_overflow_beyond_max_idle_closed(self):
        with WorldPool(max_idle_per_key=1) as pool:
            a = pool.acquire("threads", 2)
            b = pool.acquire("threads", 2)
            pool.release(a)
            pool.release(b)
            assert pool.idle_count() == 1

    def test_ttl_reaps_idle_worlds(self):
        with WorldPool(idle_ttl_s=0.0) as pool:
            a = pool.acquire("threads", 2)
            pool.release(a)  # TTL 0: reaped by the release-side sweep
            assert pool.idle_count() == 0
            assert pool.stats()["reaped"] == 1

    def test_closed_pool_refuses(self):
        pool = WorldPool()
        pool.close()
        with pytest.raises(ConfigurationError, match="closed"):
            pool.acquire("threads", 2)


class TestPlanner:
    def test_plans_are_runnable(self):
        d = Planner().plan(1 << 12)
        assert d.backend in ("threads", "procs")
        assert d.P >= 1 and (1 << 12) % d.P == 0
        assert d.est_seconds > 0
        assert d.candidates  # the margins are visible

    def test_forced_overrides_respected(self):
        d = Planner().plan(1 << 12, backend="procs", P=4)
        assert (d.backend, d.P, d.source) == ("procs", 4, "forced")

    def test_indivisible_P_rejected(self):
        with pytest.raises(ConfigurationError, match="do not divide"):
            Planner().plan(1 << 12, P=3)

    def test_fault_clamp_forces_threads_unfused(self):
        d = Planner().plan(1 << 12, faults=True)
        assert d.backend == "threads"
        assert d.fused is False and d.grouped is False
        assert d.clamped is True

    def test_fault_clamp_rejects_forced_procs(self):
        with pytest.raises(ConfigurationError, match="threads backend"):
            Planner().plan(1 << 12, faults=True, backend="procs")

    # Satellite (b): the safety property, pinned by hypothesis — over
    # any size and any attempted override, an armed fault plan never
    # yields a fused or grouped decision (ReliableComm cannot fuse; the
    # planner must never *select* a config it knows will fall back).
    @given(
        log_n=st.integers(min_value=2, max_value=20),
        fused=st.sampled_from([None, True, False]),
        grouped=st.sampled_from([None, True, False]),
        forced_P=st.sampled_from([None, 1, 2, 4]),
    )
    def test_property_faulty_plans_never_fuse(
        self, log_n, fused, grouped, forced_P
    ):
        N = 1 << log_n
        if forced_P is not None and (N % forced_P or 0 < N // forced_P < 2):
            forced_P = None
        d = Planner().plan(
            N, faults=True, fused=fused, grouped=grouped, P=forced_P
        )
        assert d.backend == "threads"
        assert d.fused is False and d.grouped is False

    def test_decision_table_renders(self):
        table = Planner().decision_table(sizes=(1 << 10, 1 << 12))
        assert "backend" in table and "1,024" in table

    def test_explain_marks_choice(self):
        d = Planner().plan(1 << 12)
        assert f"{d.backend} x {d.P}" in d.explain()

    def test_default_prices_both_algorithms(self):
        d = Planner().plan(1 << 12)
        assert d.algorithm in ("smart", "sample")
        assert any(key.startswith("sample:") for key in d.candidates)
        assert any(not key.startswith("sample:") for key in d.candidates)

    def test_auto_is_the_default_spelling(self):
        a = Planner().plan(1 << 12, algorithm="auto")
        b = Planner().plan(1 << 12)
        assert (a.algorithm, a.backend, a.P) == (b.algorithm, b.backend, b.P)

    def test_forced_algorithm_respected(self):
        d = Planner().plan(1 << 12, algorithm="sample", backend="threads",
                           P=4)
        assert d.algorithm == "sample"
        assert (d.backend, d.P, d.source) == ("threads", 4, "forced")

    def test_unplannable_algorithm_rejected(self):
        with pytest.raises(ConfigurationError, match="cannot schedule"):
            Planner().plan(1 << 12, algorithm="radix")

    def test_overlap_pins_smart(self):
        # Sample sort has a single redistribution — there is no pipeline
        # of remaps to overlap, so forcing overlap scopes the race to
        # the bitonic algorithm.
        d = Planner().plan(1 << 14, overlap=True)
        assert d.algorithm == "smart"


class TestBenchHistory:
    def test_biases_toward_measured_backend(self):
        # History saying procs is 100x the model's estimate must push the
        # planner toward threads at the benched size.
        history = BenchHistory(
            [{"backend": "procs", "keys": 1 << 14, "best_s": 50.0}]
        )
        planner = Planner(history=history)
        d = planner.plan(1 << 14)
        assert d.backend == "threads"
        assert d.source == "history"

    def test_missing_files_are_not_errors(self):
        history = BenchHistory.load(["/nonexistent/BENCH_pr999.json"])
        assert len(history) == 0

    def test_nearest_size_within_factor_four(self):
        history = BenchHistory(
            [{"backend": "threads", "keys": 1 << 14, "best_s": 0.5}]
        )
        assert history.best("threads", 1 << 15) == (0.5, 1 << 14)
        assert history.best("threads", 1 << 20) is None


class TestHostProfile:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "profile.json")
        profile = HostProfile.default()
        profile.save(path)
        loaded = HostProfile.load(path)
        assert loaded == profile

    def test_schema_mismatch_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"schema": "wrong/0", "profile": {}}')
        with pytest.raises(ConfigurationError, match="schema"):
            HostProfile.load(str(path))

    def test_estimates_are_monotone_in_n(self):
        p = HostProfile.default()
        assert p.estimate(1 << 16, 2, "threads") > p.estimate(
            1 << 12, 2, "threads"
        )

    def test_cold_costs_more_than_warm(self):
        p = HostProfile.default()
        assert p.estimate(1 << 14, 4, "procs", warm=False) > p.estimate(
            1 << 14, 4, "procs", warm=True
        )

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigurationError, match="no backend"):
            HostProfile.default().estimate(1 << 12, 2, "mpi")


class TestSortServiceRequests:
    @pytest.mark.parametrize("backend", ("threads", "procs"))
    def test_submit_sorts_correctly(self, service, backend):
        keys = make_keys(1 << 11, seed=31)
        out = service.sort(keys, backend=backend, P=2)
        assert out.sorted_keys.tobytes() == np.sort(keys).tobytes()
        assert out.decision.backend == backend
        assert out.wall_s >= out.run_s > 0

    def test_map_batches_same_shapes(self, service):
        arrays = [make_keys(1 << 10, seed=40 + i) for i in range(5)]
        outs = service.map(arrays, backend="threads", P=2)
        for arr, out in zip(arrays, outs):
            assert out.sorted_keys.tobytes() == np.sort(arr).tobytes()
        # All five were admitted back to back with one dispatcher — at
        # least one dispatch must have coalesced multiple requests.
        assert max(out.batch_size for out in outs) > 1

    def test_traced_request_carries_queue_wait_span(self, service):
        keys = make_keys(1 << 10, seed=50)
        out = service.sort(keys, backend="threads", P=2, trace=True)
        assert out.tracers is not None and len(out.tracers) == 3
        lane = out.tracers[-1]  # service lane rides after the P ranks
        [(category, name, start, end, _parent)] = lane.spans
        assert (category, name) == ("wait", "queue")
        assert end >= start
        # The rank tracers are per-request sort traces.
        assert out.tracers[0].counters["messages"] > 0

    def test_untraced_requests_carry_no_tracers(self, service):
        out = service.sort(make_keys(1 << 10, seed=51), backend="threads", P=2)
        assert out.tracers is None

    def test_faulty_request_runs_clamped_and_correct(self, service):
        keys = make_keys(1 << 11, seed=52)
        out = service.sort(keys, faults=FaultPlan(seed=9, drop=0.05), P=2)
        assert out.sorted_keys.tobytes() == np.sort(keys).tobytes()
        assert out.decision.backend == "threads"
        assert out.decision.fused is False and out.decision.clamped
        assert out.fault_stats.get("decisions", 0) > 0

    def test_non_power_of_two_rejected(self, service):
        with pytest.raises(ConfigurationError, match="power-of-two"):
            service.submit(np.arange(1000, dtype=np.uint32))

    def test_report_accumulates(self, service):
        report = service.report()
        assert isinstance(report, ServiceReport)
        assert report.served >= 1
        assert report.pool["spawned"] >= 1
        assert report.latency_percentile(0.5) > 0
        assert "served" in report.describe()


class TestAdmissionControl:
    def test_queue_full_rejects(self):
        with SortService(queue_depth=1) as svc:
            # The first request parks in the queue while the dispatcher
            # picks it up; the burst behind it must hit the bound.
            tickets, rejected = [], 0
            for i in range(20):
                try:
                    tickets.append(
                        svc.submit(make_keys(1 << 12, seed=i),
                                   backend="threads", P=2)
                    )
                except AdmissionError as exc:
                    assert exc.reason == "queue-full"
                    rejected += 1
            for t in tickets:
                t.result(60)
            assert rejected > 0
            assert svc.report().rejected_queue_full == rejected

    def test_deadline_sheds(self):
        with SortService(deadline_s=1e-12) as svc:
            with pytest.raises(AdmissionError) as err:
                svc.submit(make_keys(1 << 14, seed=1))
            assert err.value.reason == "deadline"
            assert err.value.est_seconds > 0
            assert svc.report().shed_deadline == 1

    def test_per_request_deadline_overrides_default(self):
        with SortService(deadline_s=None) as svc:
            out = svc.sort(make_keys(1 << 10, seed=2), backend="threads", P=1)
            assert out.sorted_keys[0] <= out.sorted_keys[-1]
            with pytest.raises(AdmissionError):
                svc.submit(make_keys(1 << 14, seed=3), deadline_s=1e-12)

    def test_admission_errors_are_service_errors(self):
        assert issubclass(AdmissionError, ServiceError)
        assert issubclass(ServiceClosedError, ServiceError)


class TestDeadlinePropagation:
    def test_pending_ticket_times_out_typed(self):
        with SortService() as svc:
            ticket = svc.submit(make_keys(1 << 16, seed=1),
                                backend="threads", P=2)
            with pytest.raises(RequestTimeoutError) as exc:
                ticket.result(timeout=1e-6)
            assert exc.value.stage == "result-wait"
            ticket.result(60)  # the request itself still completes

    def test_overdue_request_expires_in_queue_not_on_a_world(self):
        """A request whose deadline dies while queued is failed typed at
        dispatch — it never runs after the caller gave up."""
        with SortService(queue_depth=8, batch_max=1) as svc:
            # Park a slow request so the next one ages in the queue.
            slow = svc.submit(make_keys(1 << 20, seed=2),
                              backend="threads", P=2)
            time.sleep(0.3)  # let the dispatcher take it (queue empties)
            # The deadline clears the admission estimate (a tiny sort)
            # but dies long before the slow request frees the
            # dispatcher.
            doomed = svc.submit(make_keys(1 << 10, seed=3),
                                backend="threads", P=4,
                                deadline_s=0.03)
            with pytest.raises(RequestTimeoutError) as exc:
                doomed.result(60)
            assert exc.value.stage == "dispatch"
            slow.result(120)
            report = svc.report()
            # The expired request is accounted in its own counter, not
            # silently dropped (and not double-counted as failed).
            assert report.expired == 1
            assert report.failed == 0

    def test_generous_deadline_passes_through(self):
        with SortService() as svc:
            out = svc.sort(make_keys(1 << 10, seed=4), backend="threads",
                           P=2, deadline_s=60.0)
            assert out.sorted_keys[0] <= out.sorted_keys[-1]


class TestTenantFairness:
    """Concurrent-client admission: mixed tenants on one queue."""

    def test_tenant_accounting_in_report(self):
        adm = TenantAdmission()
        with SortService(admission=adm) as svc:
            svc.sort(make_keys(1 << 10, seed=5), backend="threads", P=2,
                     tenant="acme")
            report = svc.report()
        assert report.tenants["acme"]["admitted"] == 1
        assert "acme" in report.describe()

    def test_burst_tenant_bounded_quiet_tenant_admitted(self):
        """Under a contended queue a bursting tenant is capped near its
        fair share while a quiet tenant still gets in."""
        adm = TenantAdmission(contended_fraction=0.25)
        with SortService(queue_depth=8, batch_max=1,
                         admission=adm) as svc:
            # Stall the dispatcher with one slow request so the burst
            # really contends for queue slots.
            slow = svc.submit(make_keys(1 << 20, seed=6),
                              backend="threads", P=2)
            tickets, rejections = [], []
            for i in range(12):
                try:
                    tickets.append(
                        svc.submit(make_keys(1 << 10, seed=10 + i),
                                   backend="threads", P=4,
                                   tenant="burst")
                    )
                except AdmissionError as exc:
                    rejections.append(exc.reason)
            # The burst was shed with the *tenant* reason, not only the
            # queue-full wall, and the quiet tenant still admits.
            assert "tenant-share" in rejections
            quiet = svc.submit(make_keys(1 << 10, seed=30),
                               backend="threads", P=4, tenant="quiet")
            slow.result(120)
            for t in tickets:
                t.result(60)
            quiet.result(60)
            stats = svc.report().tenants
            assert stats["burst"]["rejected_share"] >= 1
            assert stats["quiet"]["admitted"] == 1
            # Fairness bound: the burst tenant never held more queued
            # slots than the whole queue minus the quiet share floor.
            assert stats["burst"]["admitted"] <= 8

    def test_rate_limited_tenant_rejected_typed(self):
        adm = TenantAdmission(
            {"metered": TenantPolicy(rate=0.001, burst=1.0)}
        )
        with SortService(admission=adm) as svc:
            svc.sort(make_keys(1 << 10, seed=7), backend="threads", P=2,
                     tenant="metered")
            with pytest.raises(AdmissionError) as exc:
                svc.submit(make_keys(1 << 10, seed=8), tenant="metered")
            assert exc.value.reason == "tenant-rate"

    def test_concurrent_mixed_tenants_all_accounted(self):
        """Many threads, several tenants: every submit ends as a result
        or a typed rejection, and the ledger drains to zero queued."""
        adm = TenantAdmission()
        outcomes = {"ok": 0, "rejected": 0}
        lock = threading.Lock()
        with SortService(queue_depth=8, batch_max=4,
                         admission=adm) as svc:
            def client(tenant, seed):
                try:
                    ticket = svc.submit(make_keys(1 << 10, seed=seed),
                                        backend="threads", P=2,
                                        tenant=tenant)
                except AdmissionError:
                    with lock:
                        outcomes["rejected"] += 1
                    return
                ticket.result(60)
                with lock:
                    outcomes["ok"] += 1

            threads = [
                threading.Thread(target=client,
                                 args=(f"tenant{i % 3}", 100 + i))
                for i in range(12)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            stats = svc.report().tenants
        assert outcomes["ok"] + outcomes["rejected"] == 12
        assert outcomes["ok"] >= 1
        for tenant_stats in stats.values():
            assert tenant_stats["queued"] == 0  # every admit released


class TestServiceLifecycle:
    def test_close_is_idempotent_and_rejects_new_work(self):
        svc = SortService()
        svc.sort(make_keys(1 << 10, seed=60), backend="threads", P=1)
        svc.close()
        svc.close()
        with pytest.raises(ServiceClosedError):
            svc.submit(make_keys(1 << 10, seed=61))

    def test_close_without_drain_fails_pending(self):
        svc = SortService()
        tickets = [
            svc.submit(make_keys(1 << 12, seed=70 + i), backend="threads", P=2)
            for i in range(6)
        ]
        svc.close(drain=False)
        outcomes, closed = 0, 0
        for t in tickets:
            try:
                t.result(60)
                outcomes += 1
            except ServiceClosedError:
                closed += 1
        assert outcomes + closed == len(tickets)

    def test_context_manager(self):
        with SortService() as svc:
            out = svc.sort(make_keys(1 << 10, seed=80), backend="threads", P=1)
            assert out.sorted_keys[0] <= out.sorted_keys[-1]


class TestSortFrontDoorBridge:
    """``sort(service=...)`` routes through the service."""

    def test_explicit_args_are_forced_overrides(self, service):
        keys = make_keys(1 << 11, seed=90)
        report = sort(keys, 2, backend="procs", service=service)
        assert (report.backend, report.P) == ("procs", 2)
        assert report.sorted_keys.tobytes() == np.sort(keys).tobytes()
        assert report.verified

    def test_defaults_mean_planner_chooses(self, service):
        keys = make_keys(1 << 11, seed=91)
        report = sort(keys, service=service)
        assert report.backend in ("threads", "procs")
        assert keys.size % report.P == 0

    def test_traced_bridge_builds_phase_report(self, service):
        keys = make_keys(1 << 11, seed=92)
        report = sort(keys, 2, backend="threads", trace=True, service=service)
        assert report.phases is not None
        assert report.tracers is not None

    def test_P_required_without_service(self):
        with pytest.raises(ConfigurationError, match="P is required"):
            sort(make_keys(1 << 10, seed=93))

    def test_service_runs_only_spmd_algorithms(self, service):
        with pytest.raises(ConfigurationError,
                           match="runs only the SPMD algorithms"):
            sort(make_keys(1 << 10, seed=94), 2, algorithm="radix",
                 service=service)

    def test_default_routes_across_algorithms(self, service):
        keys = make_keys(1 << 11, seed=95)
        report = sort(keys, service=service)  # algorithm resolves to auto
        assert report.algorithm in ("smart", "sample")
        assert report.sorted_keys.tobytes() == np.sort(keys).tobytes()

    def test_forced_sample_via_service(self, service):
        keys = make_keys(1 << 11, seed=96)
        report = sort(keys, 2, algorithm="sample", backend="threads",
                      service=service)
        assert report.algorithm == "sample"
        assert (report.backend, report.P) == ("threads", 2)
        assert report.sorted_keys.tobytes() == np.sort(keys).tobytes()
