"""Tests for the SPMD runtime: primitives under real concurrency, and the
message-passing implementation of Algorithm 1."""

import threading
import time

import numpy as np
import pytest

from repro.errors import CommunicationError, ConfigurationError, SpmdTimeoutError
from repro.runtime import run_spmd, spmd_bitonic_sort
from repro.runtime.threads import ThreadComm, _SharedState
from repro.sorts import SmartBitonicSort
from repro.utils.rng import make_keys


class TestPrimitives:
    def test_allgather(self):
        out = run_spmd(4, lambda c: c.allgather(c.rank * 10))
        assert out == [[0, 10, 20, 30]] * 4

    def test_bcast(self):
        out = run_spmd(4, lambda c: c.bcast(c.rank + 99, root=2))
        assert out == [101] * 4

    def test_bcast_bad_root(self):
        with pytest.raises(CommunicationError):
            run_spmd(2, lambda c: c.bcast(1, root=5))

    def test_alltoallv_routes_by_destination(self):
        def prog(c):
            buckets = [np.array([c.rank * 10 + q]) for q in range(c.size)]
            received = c.alltoallv(buckets)
            return [int(x[0]) for x in received]

        out = run_spmd(3, prog)
        # Rank q receives p*10+q from every p.
        assert out == [[0, 10, 20], [1, 11, 21], [2, 12, 22]]

    def test_alltoallv_none_buckets(self):
        def prog(c):
            buckets = [None] * c.size
            if c.rank == 0:
                buckets[1] = np.array([7])
            received = c.alltoallv(buckets)
            return received[0] is not None

        out = run_spmd(2, prog)
        assert out == [False, True]

    def test_alltoallv_wrong_bucket_count(self):
        with pytest.raises(CommunicationError):
            run_spmd(2, lambda c: c.alltoallv([None]))

    def test_sendrecv_pairwise(self):
        def prog(c):
            partner = c.rank ^ 1
            got = c.sendrecv(np.array([c.rank]), dst=partner, src=partner)
            return int(got[0])

        assert run_spmd(4, prog) == [1, 0, 3, 2]

    def test_repeated_collectives_reuse_mailbox(self):
        def prog(c):
            total = 0
            for i in range(20):
                got = c.alltoallv([np.array([i]) for _ in range(c.size)])
                total += sum(int(x[0]) for x in got)
            return total

        out = run_spmd(3, prog)
        assert out == [3 * sum(range(20))] * 3

    def test_failure_propagates_and_unblocks_peers(self):
        def prog(c):
            if c.rank == 1:
                raise ValueError("rank 1 exploded")
            c.barrier()  # would deadlock if the abort didn't break it

        with pytest.raises(ValueError, match="rank 1 exploded"):
            run_spmd(3, prog)

    def test_zero_ranks_rejected(self):
        with pytest.raises(ConfigurationError):
            run_spmd(0, lambda c: None)

    def test_single_rank(self):
        assert run_spmd(1, lambda c: c.allgather("x")) == [["x"]]


class TestFailurePaths:
    """The runtime's error paths: broken barriers, bad arguments, leaks and
    the world-level timeout contract."""

    def test_broken_barrier_is_communication_error(self):
        state = _SharedState(2)
        comm = ThreadComm(0, state)
        state.barrier.abort()
        with pytest.raises(CommunicationError) as err:
            comm.barrier()
        assert isinstance(err.value.__cause__, threading.BrokenBarrierError)

    def test_bcast_negative_root(self):
        with pytest.raises(CommunicationError, match="root"):
            run_spmd(2, lambda c: c.bcast(1, root=-1))

    def test_bcast_root_at_size(self):
        with pytest.raises(CommunicationError, match="root"):
            run_spmd(2, lambda c: c.bcast(1, root=2))

    def test_alltoallv_too_many_buckets(self):
        with pytest.raises(CommunicationError, match="buckets"):
            run_spmd(2, lambda c: c.alltoallv([None] * 3))

    def test_rank_outside_world_rejected(self):
        with pytest.raises(ConfigurationError):
            ThreadComm(2, _SharedState(2))

    def test_mailbox_cleared_after_alltoallv(self):
        """Collectives must not pin transferred arrays for the world's
        lifetime: every mailbox slot is None once the collective returns."""

        def prog(c):
            c.alltoallv([np.arange(4) for _ in range(c.size)])
            c.barrier()  # let every rank finish its pickup
            return all(
                c._state.mailbox[p][q] is None
                for p in range(c.size)
                for q in range(c.size)
            )

        assert run_spmd(3, prog) == [True, True, True]

    def test_gather_slots_cleared_after_allgather_and_bcast(self):
        def prog(c):
            c.allgather(np.arange(8))
            own_clear = c._state.gather_slots[c.rank] is None
            c.bcast(np.arange(8), root=1)
            c.barrier()  # root clears its slot after the pickup barrier
            root_clear = c._state.gather_slots[1] is None
            return own_clear and root_clear

        assert run_spmd(3, prog) == [True, True, True]

    def test_workers_are_daemon_threads(self):
        flags = run_spmd(3, lambda c: threading.current_thread().daemon)
        assert flags == [True, True, True]

    def test_timeout_is_one_world_deadline(self):
        """The join budget is shared by all ranks — a wedged world times
        out after ~timeout seconds, not size × timeout."""

        def wedge(c):
            if c.rank > 0:
                time.sleep(30)  # daemon threads: reaped at interpreter exit

        start = time.monotonic()
        with pytest.raises(SpmdTimeoutError) as err:
            run_spmd(4, wedge, timeout=0.5)
        elapsed = time.monotonic() - start
        assert elapsed < 4 * 0.5  # strictly better than per-rank budgets
        assert err.value.phase == "run_spmd"


class TestSpmdBitonicSort:
    @pytest.mark.parametrize("P,n", [(2, 64), (4, 128), (8, 256), (16, 32)])
    def test_sorts(self, P, n):
        keys = make_keys(P * n, seed=P * n + 1)

        def prog(c):
            local = keys[c.rank * n:(c.rank + 1) * n]
            return spmd_bitonic_sort(c, local)

        parts = run_spmd(P, prog)
        np.testing.assert_array_equal(np.concatenate(parts), np.sort(keys))

    def test_matches_simulator_implementation(self):
        """Two independent implementations of Algorithm 1 agree exactly."""
        P, n = 8, 512
        keys = make_keys(P * n, seed=3)
        sim = SmartBitonicSort().run(keys, P).sorted_keys

        def prog(c):
            return spmd_bitonic_sort(c, keys[c.rank * n:(c.rank + 1) * n])

        spmd = np.concatenate(run_spmd(P, prog))
        np.testing.assert_array_equal(spmd, sim)

    def test_duplicate_heavy_keys(self):
        P, n = 4, 256
        keys = make_keys(P * n, seed=4, distribution="low-entropy")

        def prog(c):
            return spmd_bitonic_sort(c, keys[c.rank * n:(c.rank + 1) * n])

        parts = run_spmd(P, prog)
        np.testing.assert_array_equal(np.concatenate(parts), np.sort(keys))

    def test_single_rank_sorts_locally(self):
        keys = make_keys(128, seed=5)
        parts = run_spmd(1, lambda c: spmd_bitonic_sort(c, keys))
        np.testing.assert_array_equal(parts[0], np.sort(keys))

    def test_ragged_partitions_rejected(self):
        def prog(c):
            local = make_keys(64 if c.rank == 0 else 32, seed=c.rank)
            return spmd_bitonic_sort(c, local)

        with pytest.raises(CommunicationError, match="unequal"):
            run_spmd(2, prog)

    def test_n_less_than_p(self):
        P, n = 16, 4
        keys = make_keys(P * n, seed=6)

        def prog(c):
            return spmd_bitonic_sort(c, keys[c.rank * n:(c.rank + 1) * n])

        parts = run_spmd(P, prog)
        np.testing.assert_array_equal(np.concatenate(parts), np.sort(keys))

    def test_many_concurrent_repetitions(self):
        """Stress the collectives for ordering races: many rounds, varying
        seeds, all must sort."""
        P, n = 4, 64
        for seed in range(8):
            keys = make_keys(P * n, seed=seed)

            def prog(c):
                return spmd_bitonic_sort(c, keys[c.rank * n:(c.rank + 1) * n])

            parts = run_spmd(P, prog)
            np.testing.assert_array_equal(np.concatenate(parts), np.sort(keys))


class TestSpmdFFT:
    @pytest.mark.parametrize("P,n", [(2, 64), (4, 64), (8, 32), (16, 8)])
    def test_matches_numpy(self, P, n):
        from repro.runtime import gather_natural_order, local_bitrev_slice, spmd_fft

        rng = np.random.default_rng(P * n)
        x = rng.normal(size=P * n) + 1j * rng.normal(size=P * n)

        def prog(c):
            local = local_bitrev_slice(x, c.rank, c.size)
            out = spmd_fft(c, local)
            return gather_natural_order(c, out)

        results = run_spmd(P, prog)
        for full in results:  # every rank reassembled the same spectrum
            np.testing.assert_allclose(full, np.fft.fft(x), rtol=1e-9, atol=1e-6)

    def test_inverse(self):
        from repro.runtime import gather_natural_order, local_bitrev_slice, spmd_fft

        rng = np.random.default_rng(1)
        x = rng.normal(size=256) + 1j * rng.normal(size=256)

        def prog(c):
            local = local_bitrev_slice(x, c.rank, c.size)
            return gather_natural_order(c, spmd_fft(c, local, inverse=True))

        full = run_spmd(4, prog)[0]
        np.testing.assert_allclose(full, np.fft.ifft(x) * 256, rtol=1e-9, atol=1e-6)

    def test_matches_simulator_fft(self):
        from repro.fft import ParallelFFT
        from repro.runtime import gather_natural_order, local_bitrev_slice, spmd_fft

        rng = np.random.default_rng(2)
        x = rng.normal(size=512) + 1j * rng.normal(size=512)
        sim = ParallelFFT().run(x, 8).output

        def prog(c):
            local = local_bitrev_slice(x, c.rank, c.size)
            return gather_natural_order(c, spmd_fft(c, local))

        spmd = run_spmd(8, prog)[0]
        np.testing.assert_allclose(spmd, sim, rtol=1e-12, atol=1e-12)
