"""Tests for the remap-plan cache and the plan's precomputed views."""

import numpy as np
import pytest

from repro.layouts import blocked_layout, smart_layout
from repro.remap import (
    PLAN_CACHE,
    RemapPlanCache,
    build_remap_plan,
    cached_remap_plan,
    perform_remap,
)
from repro.machine.simulator import Machine
from repro.model.machines import MEIKO_CS2
from repro.utils.rng import make_keys


@pytest.fixture()
def layout_pair():
    old = blocked_layout(1 << 10, 8)
    new = smart_layout(1 << 10, 8, 8, 8)
    return old, new


class TestPlanViews:
    def test_send_sorted_matches_send(self, layout_pair):
        old, new = layout_pair
        plan = build_remap_plan(old, new, 3)
        assert [q for q, _ in plan.send_sorted] == sorted(plan.send)
        for q, idx in plan.send_sorted:
            np.testing.assert_array_equal(idx, plan.send[q])

    def test_recv_concat_is_sorted_sources_concatenated(self, layout_pair):
        old, new = layout_pair
        plan = build_remap_plan(old, new, 3)
        expected = (
            np.concatenate([plan.recv[q] for q in sorted(plan.recv)])
            if plan.recv
            else np.empty(0, dtype=np.int64)
        )
        np.testing.assert_array_equal(plan.recv_concat, expected)

    def test_recv_concat_empty_when_nothing_arrives(self):
        layout = blocked_layout(64, 4)
        plan = build_remap_plan(layout, layout, 1)  # identity remap
        assert plan.recv_concat.size == 0
        assert plan.send_sorted == ()

    def test_views_are_cached_per_plan(self, layout_pair):
        old, new = layout_pair
        plan = build_remap_plan(old, new, 0)
        assert plan.recv_concat is plan.recv_concat
        assert plan.send_sorted is plan.send_sorted


class TestRemapPlanCache:
    def test_hit_returns_same_object(self, layout_pair):
        old, new = layout_pair
        cache = RemapPlanCache()
        a = cache.get(old, new, 2)
        b = cache.get(old, new, 2)
        assert a is b
        assert (cache.hits, cache.misses) == (1, 1)

    def test_distinct_ranks_are_distinct_entries(self, layout_pair):
        old, new = layout_pair
        cache = RemapPlanCache()
        assert cache.get(old, new, 0) is not cache.get(old, new, 1)
        assert len(cache) == 2

    def test_value_equal_layouts_share_entries(self):
        """Layouts built independently but equal by value hit the same
        cache slot — the cache keys by the bit assignment, not identity."""
        cache = RemapPlanCache()
        a = cache.get(blocked_layout(256, 4), smart_layout(256, 4, 7, 7), 1)
        b = cache.get(blocked_layout(256, 4), smart_layout(256, 4, 7, 7), 1)
        assert a is b
        assert cache.hits == 1

    def test_cached_plan_matches_fresh_build(self, layout_pair):
        old, new = layout_pair
        fresh = build_remap_plan(old, new, 5)
        cached = cached_remap_plan(old, new, 5)
        np.testing.assert_array_equal(cached.keep_src, fresh.keep_src)
        np.testing.assert_array_equal(cached.keep_dst, fresh.keep_dst)
        assert set(cached.send) == set(fresh.send)
        for q in fresh.send:
            np.testing.assert_array_equal(cached.send[q], fresh.send[q])
        for q in fresh.recv:
            np.testing.assert_array_equal(cached.recv[q], fresh.recv[q])

    def test_eviction_bound(self):
        cache = RemapPlanCache(max_entries=4)
        old = blocked_layout(256, 4)
        new = smart_layout(256, 4, 7, 7)
        for r in range(4):
            cache.get(old, new, r)
        assert len(cache) == 4
        cache.get(new, old, 0)  # fifth distinct key evicts the oldest
        assert len(cache) == 4

    def test_clear(self, layout_pair):
        old, new = layout_pair
        cache = RemapPlanCache()
        cache.get(old, new, 0)
        cache.clear()
        assert len(cache) == 0
        assert (cache.hits, cache.misses) == (0, 0)

    def test_global_cache_in_use(self, layout_pair):
        old, new = layout_pair
        before = PLAN_CACHE.hits
        cached_remap_plan(old, new, 7)
        cached_remap_plan(old, new, 7)
        assert PLAN_CACHE.hits > before


class TestAccountingUnchanged:
    def test_repeated_remaps_charge_identical_simulated_time(self):
        """The cache removes host work only: the simulated machine charges
        the address computation on every remap, so two identical runs —
        the second fully cache-warm — report identical simulated stats."""

        def one_run():
            machine = Machine(8, MEIKO_CS2)
            old = blocked_layout(1 << 10, 8)
            new = smart_layout(1 << 10, 8, 8, 8)
            keys = make_keys(1 << 10, seed=3)
            parts = [keys[r * 128 : (r + 1) * 128] for r in range(8)]
            perform_remap(machine, parts, old, new)
            return machine.elapsed()

        assert one_run() == one_run()
