"""Tests for the ASCII diagram renderings."""

import pytest

from repro.layouts import blocked_layout, cyclic_layout, smart_schedule
from repro.viz import (
    render_communication,
    render_network,
    render_schedule_map,
    step_locality,
)


class TestRenderNetwork:
    def test_small_network_shape(self):
        text = render_network(8)
        lines = text.splitlines()
        assert len(lines) == 9  # header + 8 rows
        # 6 columns for N=8 plus the row label column.
        assert len(lines[0].split()) == 7

    def test_final_stage_direction(self):
        """In the last stage every comparison is ascending: the row with a
        0 in the compared bit takes the min."""
        text = render_network(4)
        rows = [line.split() for line in text.splitlines()[1:]]
        # Column 2.2 compares bit 1: rows 0,1 take min, rows 2,3 take max.
        assert [r[2] for r in rows] == ["m", "m", "M", "M"]
        # Column 2.1 compares bit 0: even rows take min, odd rows take max.
        assert [r[3] for r in rows] == ["m", "M", "m", "M"]

    def test_first_stage_alternates(self):
        text = render_network(4)
        rows = [line.split() for line in text.splitlines()[1:]]
        first = [r[1] for r in rows]
        # Rows 0,1 ascending pair; rows 2,3 descending pair.
        assert first == ["m", "M", "M", "m"]

    def test_refuses_huge(self):
        with pytest.raises(ValueError):
            render_network(64)


class TestRenderCommunication:
    def test_blocked_figure_2_5(self):
        """Blocked layout: the first k steps of stage lg n + k are remote,
        the rest local (Figure 2.5)."""
        text = render_communication(blocked_layout(16, 4))
        lines = {int(l.split()[0]): l for l in text.splitlines()[2:-1]}
        assert lines[1].endswith(".")
        assert lines[3].split()[1:] == ["*", ".", "."]
        assert lines[4].split()[1:] == ["*", "*", ".", "."]
        assert "remote steps: 3 of 10" in text

    def test_cyclic_figure_2_6(self):
        """Cyclic layout: the mirror image — first lg n stages remote, the
        first k steps of stage lg n + k local (Figure 2.6)."""
        text = render_communication(cyclic_layout(16, 4))
        lines = {int(l.split()[0]): l for l in text.splitlines()[2:-1]}
        assert lines[1].split()[1:] == ["*"]
        assert lines[3].split()[1:] == [".", "*", "*"]
        assert lines[4].split()[1:] == [".", ".", "*", "*"]

    def test_cyclic_more_remote_than_blocked(self):
        """'Overall a cyclic layout has a higher communication complexity
        than a blocked layout' (§2.2)."""
        def remote_count(text):
            return int(text.splitlines()[-1].split()[2])

        blocked = remote_count(render_communication(blocked_layout(64, 4)))
        cyclic = remote_count(render_communication(cyclic_layout(64, 4)))
        assert cyclic > blocked

    def test_step_locality_matches_layout(self):
        lay = blocked_layout(64, 8)
        assert step_locality(lay, 1)
        assert not step_locality(lay, 6)


class TestRenderScheduleMap:
    def test_marks_every_remap_once(self):
        sched = smart_schedule(256, 16)
        text = render_schedule_map(sched)
        for i in range(sched.num_remaps):
            assert f"R{i}" in text
        assert "7 remaps" in text

    def test_stage_rows_cover_region(self):
        sched = smart_schedule(256, 16)
        text = render_schedule_map(sched)
        for stage in (5, 6, 7, 8):
            assert f"stage  {stage}:" in text
