"""Tests for shard routing (:mod:`repro.service.router`).

Routing policy is tested against scripted fake shards (deterministic,
no sockets): least-loaded spreading, hard-failure failover, circuit
breaking with half-open recovery, the admission-is-load-not-sickness
rule, and the typed-outcome guarantee.  A final integration test drives
a router over two real networked shards and kills one mid-stream.
"""

import threading
import time

import numpy as np
import pytest

from repro.errors import (
    AdmissionError,
    RequestTimeoutError,
    ServiceClosedError,
    ShardUnavailableError,
)
from repro.service import (
    LocalShard,
    ShardRouter,
    SortClient,
    SortServer,
    SortService,
)
from repro.service.net import ClientOutcome
from repro.utils.rng import make_keys


class FakeShard:
    """A scripted shard: pops the next behavior per sort() call.

    Behaviors: ``"ok"`` returns the sorted keys; an exception instance
    is raised; the last behavior repeats forever.
    """

    def __init__(self, name, script=("ok",), healthy=True):
        self.name = name
        self.script = list(script)
        self.healthy = healthy
        self.calls = 0
        self.health_calls = 0

    def _next(self):
        step = self.script[0]
        if len(self.script) > 1:
            self.script.pop(0)
        return step

    def sort(self, keys, **opts):
        self.calls += 1
        step = self._next()
        if step == "ok":
            return ClientOutcome(
                sorted_keys=np.sort(np.asarray(keys)),
                request_id=f"{self.name}-{self.calls}",
                shard=self.name,
            )
        raise step

    def health(self, timeout_s=5.0):
        self.health_calls += 1
        if not self.healthy:
            raise ShardUnavailableError(f"{self.name} is down")
        return {"server": self.name, "healthy": True}


def _down(name="x"):
    return ShardUnavailableError(f"{name} unreachable")


class TestRoutingPolicy:
    def test_routes_and_sorts(self):
        router = ShardRouter({"a": FakeShard("a")})
        keys = make_keys(256, seed=0)
        out = router.sort(keys)
        assert np.array_equal(out.sorted_keys, np.sort(keys))
        assert out.failovers == 0
        assert router.routed == 1

    def test_spreads_across_shards(self):
        a, b = FakeShard("a"), FakeShard("b")
        router = ShardRouter({"a": a, "b": b})
        for i in range(8):
            router.sort(make_keys(64, seed=i))
        assert a.calls >= 2 and b.calls >= 2

    def test_empty_pool_rejected(self):
        with pytest.raises(ShardUnavailableError):
            ShardRouter({})

    def test_closed_router_is_typed(self):
        router = ShardRouter({"a": FakeShard("a")})
        router.close()
        with pytest.raises(ServiceClosedError):
            router.sort(make_keys(16, seed=0))


class TestFailover:
    def test_hard_failure_fails_over(self):
        dead = FakeShard("dead", script=(_down("dead"),))
        live = FakeShard("live")
        router = ShardRouter({"dead": dead, "live": live})
        # Run a few requests: any that land on `dead` must fail over.
        for i in range(4):
            out = router.sort(make_keys(128, seed=i))
            assert out.shard == "live"
        assert live.calls >= 4

    def test_failover_count_reported(self):
        dead = FakeShard("dead", script=(_down("dead"),))
        live = FakeShard("live")
        router = ShardRouter({"dead": dead, "live": live})
        saw_failover = False
        for i in range(6):
            out = router.sort(make_keys(128, seed=i))
            if out.failovers:
                saw_failover = True
        assert saw_failover
        assert router.failovers >= 1

    def test_all_dead_is_typed_with_snapshot(self):
        router = ShardRouter({
            "a": FakeShard("a", script=(_down("a"),)),
            "b": FakeShard("b", script=(_down("b"),)),
        })
        with pytest.raises(ShardUnavailableError) as exc:
            router.sort(make_keys(64, seed=0))
        assert set(exc.value.shards) == {"a", "b"}
        assert exc.value.attempts == 2

    def test_timeout_never_fails_over(self):
        """A spent budget cannot be fixed by another shard."""
        slow = FakeShard(
            "slow",
            script=(RequestTimeoutError("spent", stage="client"),),
        )
        live = FakeShard("live")
        router = ShardRouter({"slow": slow, "live": live})
        raised = 0
        for i in range(4):
            try:
                router.sort(make_keys(64, seed=i))
            except RequestTimeoutError:
                raised += 1
        assert raised >= 1
        assert live.calls + slow.calls == 4  # no re-sends of timeouts

    def test_router_deadline_is_typed(self):
        router = ShardRouter({"a": FakeShard("a")})
        with pytest.raises(RequestTimeoutError) as exc:
            router.sort(make_keys(64, seed=0), deadline_s=0.0)
        assert exc.value.stage == "router"

    def test_admission_rejection_tries_another_shard(self):
        full = FakeShard(
            "full", script=(AdmissionError("full", reason="queue-full"),)
        )
        live = FakeShard("live")
        router = ShardRouter({"full": full, "live": live})
        for i in range(4):
            out = router.sort(make_keys(64, seed=i))
            assert out.shard == "live"
        # Admission rejections are load, not sickness: no ejection.
        assert router.status()["full"]["state"] in ("healthy", "shaky")
        assert router.status()["full"]["consecutive_failures"] == 0

    def test_all_full_raises_admission_not_unavailable(self):
        router = ShardRouter({
            "a": FakeShard("a", script=(AdmissionError("full"),)),
            "b": FakeShard("b", script=(AdmissionError("full"),)),
        })
        with pytest.raises(AdmissionError):
            router.sort(make_keys(64, seed=0))


class TestCircuitBreaker:
    def test_ejection_after_consecutive_failures(self):
        dead = FakeShard("dead", script=(_down("dead"),))
        live = FakeShard("live")
        router = ShardRouter({"dead": dead, "live": live},
                             eject_after=2, cooldown_s=30.0)
        for i in range(8):
            router.sort(make_keys(64, seed=i))
        assert router.status()["dead"]["state"] == "ejected"
        calls_when_ejected = dead.calls
        for i in range(4):
            router.sort(make_keys(64, seed=i))
        assert dead.calls == calls_when_ejected  # no traffic while out

    def test_half_open_probe_heals(self):
        flaky = FakeShard(
            "flaky", script=(_down(), _down(), "ok"), healthy=True
        )
        live = FakeShard("live")
        router = ShardRouter({"flaky": flaky, "live": live},
                             eject_after=2, cooldown_s=0.05)
        for i in range(6):
            router.sort(make_keys(64, seed=i))
        time.sleep(0.06)  # cooldown passes: flaky turns half-open
        assert router.status()["flaky"]["state"] in ("half-open",
                                                     "ejected")
        for i in range(6):
            router.sort(make_keys(64, seed=i))
        # The half-open probe succeeded ("ok" script) and closed the
        # breaker.
        assert router.status()["flaky"]["state"] == "healthy"

    def test_health_probe_failures_eject(self):
        sick = FakeShard("sick", healthy=False)
        live = FakeShard("live")
        router = ShardRouter({"sick": sick, "live": live},
                             eject_after=2, cooldown_s=30.0)
        router.check_health()
        router.check_health()
        assert router.status()["sick"]["state"] == "ejected"
        assert router.status()["live"]["state"] == "healthy"
        out = router.sort(make_keys(64, seed=0))
        assert out.shard == "live"
        assert sick.calls == 0

    def test_background_health_thread(self):
        live = FakeShard("live")
        router = ShardRouter({"live": live}, health_interval_s=0.02)
        router.start_health_checks()
        time.sleep(0.15)
        router.close()
        assert live.health_calls >= 2
        assert router.status()["live"]["last_health"]["healthy"] is True


class TestLocalShard:
    @pytest.fixture(scope="class")
    def service(self):
        svc = SortService(queue_depth=8, batch_max=2)
        yield svc
        svc.close()

    def test_sort_and_health(self, service):
        shard = LocalShard(service, name="inproc")
        keys = make_keys(2048, seed=1)
        out = shard.sort(keys, backend="threads", P=2, deadline_s=60.0)
        assert np.array_equal(out.sorted_keys, np.sort(keys))
        assert out.shard == "inproc"
        answer = shard.health()
        assert answer["healthy"] is True

    def test_mixed_local_and_fake_pool(self, service):
        router = ShardRouter({
            "inproc": LocalShard(service, name="inproc"),
            "dead": FakeShard("dead", script=(_down("dead"),)),
        })
        for i in range(3):
            out = router.sort(make_keys(1024, seed=i), backend="threads",
                              P=2, deadline_s=60.0)
            assert out.shard == "inproc"


class TestIntegrationKillMidStream:
    def test_requests_survive_a_shard_kill(self):
        servers, shards = [], {}
        for s in range(2):
            svc = SortService(queue_depth=8, batch_max=2)
            srv = SortServer(svc, name=f"s{s}", own_service=True)
            addr = srv.start()
            servers.append(srv)
            shards[f"s{s}"] = SortClient(
                addr, via_shm=False, retries=2, backoff_s=0.01,
                timeout_s=5.0,
            )
        router = ShardRouter(shards, eject_after=1, cooldown_s=5.0)
        try:
            for i in range(3):
                router.sort(make_keys(1024, seed=i), deadline_s=30.0,
                            backend="threads", P=2)
            servers[1].kill()
            for i in range(3, 6):
                keys = make_keys(1024, seed=i)
                out = router.sort(keys, deadline_s=30.0,
                                  backend="threads", P=2)
                assert np.array_equal(out.sorted_keys, np.sort(keys))
                assert out.shard == "s0"
        finally:
            router.close()
            for cli in shards.values():
                cli.close()
            for srv in servers:
                srv.close()
