"""Correctness and metric tests for all five parallel sorts."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, VerificationError
from repro.sorts import (
    BlockedMergeBitonicSort,
    CyclicBlockedBitonicSort,
    ParallelRadixSort,
    ParallelSampleSort,
    SmartBitonicSort,
    verify_sorted,
)
from repro.theory import counts_for
from repro.utils.rng import make_keys

ALL_SORTS = [
    SmartBitonicSort,
    CyclicBlockedBitonicSort,
    BlockedMergeBitonicSort,
    ParallelRadixSort,
    ParallelSampleSort,
]


class TestVerifySorted:
    def test_accepts_correct(self):
        verify_sorted(np.array([3, 1, 2]), np.array([1, 2, 3]), "x")

    def test_rejects_unsorted(self):
        with pytest.raises(VerificationError):
            verify_sorted(np.array([3, 1, 2]), np.array([1, 3, 2]), "x")

    def test_rejects_wrong_multiset(self):
        with pytest.raises(VerificationError):
            verify_sorted(np.array([3, 1, 2]), np.array([1, 2, 4]), "x")

    def test_rejects_wrong_shape(self):
        with pytest.raises(VerificationError):
            verify_sorted(np.array([3, 1]), np.array([1, 2, 3]), "x")


@pytest.mark.parametrize("sort_cls", ALL_SORTS)
class TestAllSorts:
    def test_sorts_uniform(self, sort_cls):
        keys = make_keys(1024, seed=3)
        sort_cls().run(keys, 8, verify=True)

    @pytest.mark.parametrize("dist", ["low-entropy", "zero-entropy", "gaussian",
                                      "sorted", "reverse-sorted"])
    def test_sorts_adversarial_distributions(self, sort_cls, dist):
        keys = make_keys(512, seed=11, distribution=dist)
        sort_cls().run(keys, 8, verify=True)

    def test_single_processor(self, sort_cls):
        keys = make_keys(256, seed=5)
        sort_cls().run(keys, 1, verify=True)

    def test_two_processors(self, sort_cls):
        keys = make_keys(64, seed=5)
        sort_cls().run(keys, 2, verify=True)

    def test_rejects_bad_sizes(self, sort_cls):
        with pytest.raises(ConfigurationError):
            sort_cls().run(make_keys(100), 4)

    def test_stats_populated(self, sort_cls):
        res = sort_cls().run(make_keys(512, seed=9), 4)
        st_ = res.stats
        assert st_.elapsed_us > 0
        assert st_.P == 4 and st_.n == 128
        assert st_.us_per_key > 0

    def test_deterministic(self, sort_cls):
        keys = make_keys(512, seed=4)
        a = sort_cls().run(keys, 4)
        b = sort_cls().run(keys, 4)
        assert a.stats.elapsed_us == b.stats.elapsed_us
        np.testing.assert_array_equal(a.sorted_keys, b.sorted_keys)


class TestSmartConfigurations:
    @pytest.mark.parametrize("mode,fused", [("long", True), ("long", False),
                                            ("short", False)])
    @pytest.mark.parametrize("local", ["merge", "simulate"])
    def test_all_configs_sort(self, mode, fused, local):
        keys = make_keys(1024, seed=8)
        SmartBitonicSort(mode=mode, fused=fused, local=local).run(
            keys, 8, verify=True
        )

    @pytest.mark.parametrize("strategy", ["head", "tail"])
    def test_remap_strategies_sort(self, strategy):
        keys = make_keys(2048, seed=8)
        SmartBitonicSort(strategy=strategy).run(keys, 8, verify=True)

    def test_middle_strategies_sort(self):
        # Choose sizes where N_RemainingSteps > 0: P=8 (lgP=3, tri=6) and
        # lg n = 4 -> rem = 2.
        keys = make_keys(8 * 16, seed=8)
        SmartBitonicSort(strategy="middle2").run(keys, 8, verify=True)

    def test_short_fused_rejected(self):
        with pytest.raises(ConfigurationError):
            SmartBitonicSort(mode="short", fused=True)

    def test_bad_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            SmartBitonicSort(mode="medium")

    def test_bad_local_rejected(self):
        with pytest.raises(ConfigurationError):
            SmartBitonicSort(local="psychic")

    def test_merge_equals_simulate_output(self):
        """Chapter 4's optimized computation is observationally identical to
        simulating the network steps."""
        keys = make_keys(4096, seed=13)
        a = SmartBitonicSort(local="merge").run(keys, 16).sorted_keys
        b = SmartBitonicSort(local="simulate").run(keys, 16).sorted_keys
        np.testing.assert_array_equal(a, b)

    def test_n_smaller_than_p(self):
        """The smart layout lifts the N >= P**2 restriction (§3.2)."""
        keys = make_keys(64, seed=2)  # n = 4 < P = 16
        SmartBitonicSort().run(keys, 16, verify=True)

    def test_cyclic_blocked_requires_n_ge_p(self):
        keys = make_keys(64, seed=2)
        with pytest.raises(ConfigurationError):
            CyclicBlockedBitonicSort().run(keys, 16)

    @given(st.integers(0, 10_000))
    @settings(max_examples=15)
    def test_property_random_workloads(self, seed):
        rng = np.random.default_rng(seed)
        P = int(rng.choice([2, 4, 8]))
        n = int(rng.choice([8, 32, 128]))
        keys = rng.integers(0, 1 << 31, P * n, dtype=np.uint32)
        SmartBitonicSort().run(keys, P, verify=True)


class TestMetricsMatchTheory:
    @pytest.mark.parametrize("P,n", [(4, 64), (8, 256), (16, 1024)])
    def test_smart_counts(self, P, n):
        res = SmartBitonicSort().run(make_keys(P * n, seed=1), P)
        c = counts_for("smart", P * n, P)
        assert res.stats.remaps == c.remaps
        assert res.stats.volume_per_proc == c.volume
        assert res.stats.messages_per_proc == c.messages

    @pytest.mark.parametrize("P,n", [(4, 64), (8, 256)])
    def test_cyclic_blocked_counts(self, P, n):
        res = CyclicBlockedBitonicSort().run(make_keys(P * n, seed=1), P)
        c = counts_for("cyclic-blocked", P * n, P)
        assert res.stats.remaps == c.remaps
        assert res.stats.volume_per_proc == c.volume
        assert res.stats.messages_per_proc == c.messages

    @pytest.mark.parametrize("P,n", [(4, 64), (8, 256)])
    def test_blocked_merge_counts(self, P, n):
        res = BlockedMergeBitonicSort().run(make_keys(P * n, seed=1), P)
        c = counts_for("blocked", P * n, P)
        assert res.stats.remaps == c.remaps
        assert res.stats.volume_per_proc == c.volume
        assert res.stats.messages_per_proc == c.messages

    def test_smart_counts_when_n_less_than_p(self):
        """For n < P Lemma 4's uniform groups break positionally; the
        schedule falls back to exact plan counting and must still match
        the simulator."""
        P, n = 16, 8
        res = SmartBitonicSort().run(make_keys(P * n, seed=1), P)
        c = counts_for("smart", P * n, P)
        assert res.stats.volume_per_proc == c.volume
        assert res.stats.messages_per_proc == c.messages

    def test_short_messages_count_per_element(self):
        res = SmartBitonicSort(mode="short", fused=False).run(
            make_keys(1024, seed=1), 8
        )
        # Every transferred element is its own message.
        assert res.stats.messages_per_proc == res.stats.volume_per_proc


class TestRelativePerformance:
    """The headline orderings of Chapter 5, at reduced scale."""

    def test_smart_fastest_bitonic(self):
        keys = make_keys(32 * 4096, seed=21)
        smart = SmartBitonicSort().run(keys, 32).stats.us_per_key
        cb = CyclicBlockedBitonicSort().run(keys, 32).stats.us_per_key
        bm = BlockedMergeBitonicSort().run(keys, 32).stats.us_per_key
        assert smart < cb < bm

    def test_short_messages_much_slower(self):
        keys = make_keys(16 * 4096, seed=22)
        short = SmartBitonicSort(mode="short", fused=False).run(keys, 16).stats
        long_ = SmartBitonicSort(mode="long", fused=False).run(keys, 16).stats
        assert short.communication_per_key > 5 * long_.communication_per_key

    def test_fused_beats_unfused(self):
        keys = make_keys(16 * 4096, seed=23)
        fused = SmartBitonicSort(fused=True).run(keys, 16).stats
        unfused = SmartBitonicSort(fused=False).run(keys, 16).stats
        assert fused.elapsed_us < unfused.elapsed_us

    def test_merge_compute_beats_simulation(self):
        keys = make_keys(16 * 4096, seed=24)
        merge = SmartBitonicSort(local="merge").run(keys, 16).stats
        sim = SmartBitonicSort(local="simulate").run(keys, 16).stats
        assert merge.computation_per_key < sim.computation_per_key

    def test_sample_sort_skew_sensitivity(self):
        """§5.5: low-entropy keys unbalance sample sort but leave bitonic
        sort unchanged (it is oblivious to the distribution)."""
        P, n = 8, 4096
        uni = make_keys(P * n, seed=25, distribution="uniform")
        skew = make_keys(P * n, seed=25, distribution="zero-entropy")
        samp_u = ParallelSampleSort().run(uni, P).stats.elapsed_us
        samp_s = ParallelSampleSort().run(skew, P).stats.elapsed_us
        bit_u = SmartBitonicSort().run(uni, P).stats.elapsed_us
        bit_s = SmartBitonicSort().run(skew, P).stats.elapsed_us
        assert samp_s > 1.5 * samp_u  # skew hurts sample sort
        assert abs(bit_s - bit_u) / bit_u < 0.05  # bitonic oblivious
