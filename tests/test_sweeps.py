"""Tests for the (P, n) sweep utilities."""

import pytest

from repro.errors import ConfigurationError
from repro.harness.sweeps import compare_sweep, render_heatmap, run_sweep
from repro.sorts import CyclicBlockedBitonicSort, SmartBitonicSort


class TestRunSweep:
    def test_grid_covered(self):
        res = run_sweep(SmartBitonicSort(), procs=(2, 4), keys_per_proc=(64, 128))
        assert set(res.values) == {(2, 64), (2, 128), (4, 64), (4, 128)}
        assert all(v > 0 for v in res.values.values())

    def test_custom_metric(self):
        res = run_sweep(
            SmartBitonicSort(), (4,), (128,),
            metric=lambda st: st.remaps, metric_name="remaps",
        )
        assert res.values[(4, 128)] == 3  # lg P + 1 at this size

    def test_row_accessor(self):
        res = run_sweep(SmartBitonicSort(), (2, 4), (64, 128))
        assert res.row(2) == [res.values[(2, 64)], res.values[(2, 128)]]

    def test_empty_grid_rejected(self):
        with pytest.raises(ConfigurationError):
            run_sweep(SmartBitonicSort(), (), (64,))


class TestCompareSweep:
    def test_smart_beats_cyclic_blocked_on_grid(self):
        res = compare_sweep(
            SmartBitonicSort(), CyclicBlockedBitonicSort(),
            procs=(4, 8), keys_per_proc=(1024, 4096),
        )
        # Ratio > 1 everywhere: smart is the faster of the two.
        assert all(v > 1.0 for v in res.values.values())


class TestHeatmap:
    def test_renders_all_cells(self):
        res = run_sweep(SmartBitonicSort(), (2, 4, 8), (64, 256))
        text = render_heatmap(res)
        lines = text.splitlines()
        assert len(lines) == 2 + 3  # header + column row + one per P
        for P in (2, 4, 8):
            assert any(line.strip().startswith(str(P)) for line in lines[2:])

    def test_shades_span_ramp(self):
        res = run_sweep(SmartBitonicSort(), (2, 8), (64, 4096))
        text = render_heatmap(res)
        assert "light=low" in text
