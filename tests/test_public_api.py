"""The public API surface: imports, exports, and the README quickstart."""

import importlib

import numpy as np
import pytest

import repro


class TestExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.__all__ lists missing {name!r}"

    def test_version(self):
        assert repro.__version__.count(".") == 2

    @pytest.mark.parametrize(
        "module",
        [
            "repro.utils", "repro.model", "repro.machine", "repro.network",
            "repro.layouts", "repro.remap", "repro.localsort", "repro.sorts",
            "repro.theory", "repro.harness", "repro.viz", "repro.fft",
            "repro.hierarchy", "repro.runtime", "repro.records",
        ],
    )
    def test_subpackage_all_resolves(self, module):
        mod = importlib.import_module(module)
        for name in getattr(mod, "__all__", []):
            assert hasattr(mod, name), f"{module}.__all__ lists missing {name!r}"

    @pytest.mark.parametrize(
        "module",
        [
            "repro.utils", "repro.model", "repro.machine", "repro.network",
            "repro.layouts", "repro.remap", "repro.localsort", "repro.sorts",
            "repro.theory", "repro.fft", "repro.hierarchy", "repro.runtime",
        ],
    )
    def test_public_items_documented(self, module):
        """Every exported item carries a docstring."""
        mod = importlib.import_module(module)
        for name in getattr(mod, "__all__", []):
            obj = getattr(mod, name)
            if callable(obj) or isinstance(obj, type):
                assert obj.__doc__, f"{module}.{name} lacks a docstring"


class TestReadmeQuickstart:
    def test_quickstart_code_runs(self):
        """The exact code from README.md's quickstart."""
        from repro import CyclicBlockedBitonicSort, SmartBitonicSort, make_keys

        keys = make_keys(1 << 14)  # scaled down from the README's 1 << 20
        res = SmartBitonicSort().run(keys, P=32, verify=True)
        assert res.stats.us_per_key > 0
        # At n = 512 (lg n = 9 < lgP(lgP+1)/2 = 15) the schedule needs one
        # extra remap beyond lg P + 1; at the README's full size it is 6.
        assert res.stats.remaps == 7
        base = CyclicBlockedBitonicSort().run(keys, P=32, verify=True)
        assert base.stats.elapsed_us / res.stats.elapsed_us > 1.0

    def test_quickstart_example_runs(self, capsys):
        import runpy
        import sys
        from pathlib import Path

        example = Path(__file__).resolve().parents[1] / "examples" / "quickstart.py"
        if not example.exists():
            pytest.skip("examples not present in this checkout")
        # Patch the workload size down so the test stays fast.
        src = example.read_text().replace("1 << 20", "1 << 14")
        ns = {"__name__": "__main__"}
        exec(compile(src, str(example), "exec"), ns)
        out = capsys.readouterr().out
        assert "Smart bitonic sort (Algorithm 1):" in out
        assert "Speedup of Smart over Cyclic-Blocked" in out
