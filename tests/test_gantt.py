"""Tests for run tracing and the Gantt rendering."""

import pytest

from repro.errors import ConfigurationError
from repro.machine import Machine
from repro.sorts import ParallelSampleSort, SmartBitonicSort
from repro.utils.rng import make_keys
from repro.viz import render_gantt


class TestTracing:
    def test_untraced_by_default(self):
        res = SmartBitonicSort().run(make_keys(256, seed=1), 4)
        assert res.traces is None

    def test_traced_run_collects_events(self):
        res = SmartBitonicSort().run(make_keys(256, seed=1), 4, trace=True)
        assert res.traces is not None and len(res.traces) == 4
        for tr in res.traces:
            assert tr, "every processor did some work"
            for start, end, cat in tr:
                assert 0 <= start <= end
                assert isinstance(cat, str)

    def test_trace_times_cover_breakdown(self):
        """The traced busy intervals sum to the breakdown totals."""
        res = SmartBitonicSort().run(make_keys(512, seed=2), 4, trace=True)
        # Compare the first processor's trace against its share.
        total_traced = sum(end - start for start, end, _ in res.traces[0])
        # The clock advanced through exactly the traced intervals.
        assert total_traced == pytest.approx(res.stats.elapsed_us, rel=0.01)

    def test_tracing_does_not_change_results(self):
        keys = make_keys(512, seed=3)
        plain = SmartBitonicSort().run(keys, 4)
        traced = SmartBitonicSort().run(keys, 4, trace=True)
        assert plain.stats.elapsed_us == traced.stats.elapsed_us

    def test_machine_trace_flag(self):
        m = Machine(2, trace=True)
        m.charge_compute(0, "merge", 10, 1.0)
        assert m.procs[0].trace == [(0.0, 10.0, "merge")]


class TestGanttRendering:
    def test_renders_rows_per_processor(self):
        res = SmartBitonicSort().run(make_keys(512, seed=4), 4, trace=True)
        text = render_gantt(res.traces, width=60)
        lines = text.splitlines()
        assert sum(1 for l in lines if l.startswith("P")) == 4
        # Contains sort and transfer glyphs.
        body = "\n".join(lines[1:-1])
        assert "S" in body and "t" in body

    def test_sample_sort_imbalance_visible(self):
        """Skewed input: some processor's row is mostly idle dots."""
        keys = make_keys(8 * 1024, seed=5, distribution="zero-entropy")
        res = ParallelSampleSort().run(keys, 8, trace=True)
        text = render_gantt(res.traces, width=80, legend=False)
        rows = [l[5:] for l in text.splitlines()[1:]]
        dot_fractions = [row.count(".") / max(len(row), 1) for row in rows]
        assert max(dot_fractions) > 0.5  # someone waits most of the run

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            render_gantt([])
        with pytest.raises(ConfigurationError):
            render_gantt([[]])

    def test_rejects_bad_width(self):
        res = SmartBitonicSort().run(make_keys(64, seed=6), 2, trace=True)
        with pytest.raises(ConfigurationError):
            render_gantt(res.traces, width=0)
