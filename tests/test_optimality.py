"""§3.2.2's open question, answered exhaustively at small sizes.

The paper conjectures that the TailRemap placement achieves the minimum
transferred volume among remap-based schedules ("we believe ... however
this was beyond the scope of this thesis").  Within the placement family
the framework expresses, these tests enumerate *every* valid placement for
a sweep of tractable problem shapes and confirm the conjecture — including
shapes with a non-zero step remainder, where Head and Tail genuinely
differ as schedules (results/ holds a 786,568-placement confirmation at
N=256, P=8 too slow for the default suite).
"""

import pytest

from repro.errors import ConfigurationError
from repro.layouts.optimality import (
    count_placements,
    enumerate_placements,
    minimum_volume_placement,
    placement_volume,
)
from repro.layouts.schedule import _region_steps, _walk, build_schedule
from repro.utils.bits import ilog2


class TestEnumeration:
    def test_count_matches_enumeration(self):
        N, P = 32, 4
        total = _region_steps(N, P)
        expect = count_placements(total, ilog2(N // P))
        assert sum(1 for _ in enumerate_placements(N, P)) == expect

    def test_every_placement_is_valid_schedule(self):
        for sched in enumerate_placements(32, 4):
            assert sum(ph.num_steps for ph in sched.phases) == _region_steps(32, 4)

    def test_cap_enforced(self):
        with pytest.raises(ConfigurationError, match="exceed"):
            list(enumerate_placements(1 << 12, 16))

    def test_fast_volume_matches_schedule(self):
        for N, P, counts in [(32, 4, (3, 3, 3)), (64, 4, (2, 3, 3, 3)),
                             (128, 8, (2, 4, 4, 4, 4))]:
            assert placement_volume(N, P, counts) == _walk(
                N, P, counts, "x"
            ).volume_per_processor()

    def test_fast_volume_rejects_n_less_than_p(self):
        with pytest.raises(ConfigurationError, match="n >= P"):
            placement_volume(64, 16, (2, 2, 2, 2, 2, 2, 2, 2, 2))


class TestTailConjecture:
    @pytest.mark.parametrize("N,P", [(32, 4), (64, 4), (128, 4), (256, 4),
                                     (128, 8)])
    def test_tail_achieves_global_minimum(self, N, P):
        _, vol = minimum_volume_placement(N, P, build=False)
        tail = build_schedule(N, P, "tail").volume_per_processor()
        assert tail == vol, (
            f"counterexample to §3.2.2's conjecture at N={N}, P={P}: "
            f"tail={tail}, optimum={vol}"
        )

    def test_build_and_fast_paths_agree(self):
        sched, v1 = minimum_volume_placement(64, 4, build=True)
        counts, v2 = minimum_volume_placement(64, 4, build=False)
        assert v1 == v2
        assert tuple(ph.num_steps for ph in sched.phases) == counts

    def test_head_never_below_minimum(self):
        for N, P in [(32, 4), (128, 8)]:
            _, vol = minimum_volume_placement(N, P, build=False)
            head = build_schedule(N, P, "head").volume_per_processor()
            assert head >= vol
