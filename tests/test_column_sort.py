"""Tests for column sort (Ch. 6 related work)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ScheduleError
from repro.sorts import ColumnSort, SmartBitonicSort
from repro.utils.rng import make_keys


class TestColumnSortCorrectness:
    @pytest.mark.parametrize("P,n", [(2, 8), (2, 64), (4, 32), (4, 256),
                                     (8, 128), (16, 512)])
    def test_sorts(self, P, n):
        ColumnSort().run(make_keys(P * n, seed=P * n), P, verify=True)

    @pytest.mark.parametrize("dist", ["low-entropy", "zero-entropy", "sorted",
                                      "reverse-sorted"])
    def test_adversarial_distributions(self, dist):
        keys = make_keys(8 * 128, seed=4, distribution=dist)
        ColumnSort().run(keys, 8, verify=True)

    def test_single_processor(self):
        ColumnSort().run(make_keys(64, seed=1), 1, verify=True)

    @given(st.integers(0, 10**6))
    @settings(max_examples=15)
    def test_property_random(self, seed):
        rng = np.random.default_rng(seed)
        keys = rng.integers(0, 1 << 31, 4 * 64, dtype=np.uint32)
        ColumnSort().run(keys, 4, verify=True)


class TestColumnSortConstraints:
    def test_rejects_r_too_small(self):
        """Leighton's r >= 2(s-1)**2 condition (the paper's 'N >= P**3')."""
        with pytest.raises(ScheduleError, match="2\\(s-1\\)\\*\\*2"):
            ColumnSort().run(make_keys(16 * 64, seed=1), 16)  # n=64 < 450

    def test_boundary_sizes(self):
        # P=4 needs r >= 18 -> r=32 works, r=16 does not.
        ColumnSort().run(make_keys(4 * 32, seed=2), 4, verify=True)
        with pytest.raises(ScheduleError):
            ColumnSort().run(make_keys(4 * 16, seed=2), 4)


class TestColumnSortStructure:
    def test_four_communication_phases(self):
        """Two remaps (transpose/untranspose) + two one-to-one shifts."""
        res = ColumnSort().run(make_keys(8 * 128, seed=3), 8)
        assert res.stats.remaps == 4

    def test_transpose_volume_is_all_to_all(self):
        """Each transpose keeps only n/P per processor; shifts move n/2.
        V = 2 n (1 - 1/P) + 2 * n/2 (max; the last processor sends only
        one half-column but receives both)."""
        P, n = 8, 256
        res = ColumnSort().run(make_keys(P * n, seed=5), P)
        expect = 2 * (n - n // P) + 2 * (n // 2)
        assert res.stats.volume_per_proc == expect

    def test_comparison_with_bitonic(self):
        """Column sort does 4+ local sorts; with radix-sort local phases it
        is computation-heavier than the smart bitonic sort at these sizes
        (CDMS94 found column sort competitive only at huge n/P)."""
        P, n = 8, 2048
        keys = make_keys(P * n, seed=6)
        col = ColumnSort().run(keys, P).stats
        smart = SmartBitonicSort().run(keys, P).stats
        assert col.computation_per_key > smart.computation_per_key
