"""Tests for the warm world lifecycle (spawn_world / World.run / close).

PR 5 split world construction from job execution so the serving layer
can keep worlds alive between requests.  These tests pin the lifecycle
contract: warm reuse is byte-identical to cold one-shot runs, per-job
state (tracers, counters) never bleeds between jobs, dead worlds refuse
further work and are replaceable, and the procs backend leaks neither
child processes nor shared-memory segments — even when a rank is killed
mid-sort or the owning process exits without closing (the atexit sweep).
"""

import os
import signal
import subprocess
import sys
import textwrap
import time

import numpy as np
import pytest

from repro.errors import CommunicationError, ConfigurationError
from repro.runtime import (
    ProcWorld,
    ThreadWorld,
    World,
    run_spmd,
    spawn_world,
    spmd_bitonic_sort,
)
from repro.service.jobs import noop_job, sort_shards_job
from repro.trace.recorder import Tracer
from repro.utils.rng import make_keys

BACKENDS = ("threads", "procs")


def _shm_rspmd():
    if not os.path.isdir("/dev/shm"):  # pragma: no cover — non-Linux
        return []
    return [f for f in os.listdir("/dev/shm") if f.startswith("rspmd")]


def _sort_job(comm, keys):
    return spmd_bitonic_sort(comm, keys)


def _traced_sort_job(comm, keys):
    comm.tracer = Tracer(comm.rank)
    spmd_bitonic_sort(comm, keys)
    return dict(comm.tracer.counters)


def _slow_job(comm):
    time.sleep(30)


def _probe_tracer_job(comm):
    return comm.tracer is None


def _boom_job(comm):
    if comm.rank == 1:
        raise ValueError("rank 1 exploded")
    comm.barrier()


def _die_mid_sort_job(comm, shard):
    if comm.rank == 1:
        os.kill(os.getpid(), signal.SIGKILL)
    return spmd_bitonic_sort(comm, shard)


class TestSpawnWorld:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_spawn_run_close(self, backend):
        world = spawn_world(2, backend=backend)
        try:
            assert isinstance(world, World)
            assert world.backend == backend and world.size == 2
            assert world.healthy()
            assert world.run(noop_job) == [0, 1]
        finally:
            world.close()
        assert not world.healthy()

    def test_unknown_backend(self):
        with pytest.raises(ConfigurationError, match="unknown SPMD backend"):
            spawn_world(2, backend="mpi")

    def test_threads_rejects_procs_options(self):
        from repro.runtime import BackendOptions

        with pytest.raises(ConfigurationError, match="no extra options"):
            spawn_world(
                2, backend="threads",
                options=BackendOptions(arena_bytes=1 << 20),
            )

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_context_manager_closes(self, backend):
        with spawn_world(2, backend=backend) as world:
            assert world.run(noop_job) == [0, 1]
        assert not world.healthy()
        assert not _shm_rspmd()

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_closed_world_refuses_jobs(self, backend):
        world = spawn_world(2, backend=backend)
        world.close()
        with pytest.raises(ConfigurationError, match="closed"):
            world.run(noop_job)

    def test_run_rank_args_length_checked(self):
        with spawn_world(2, backend="threads") as world:
            with pytest.raises(ConfigurationError, match="rank_args"):
                world.run(noop_job, rank_args=[(1,)])


class TestWarmReuse:
    """Satellite (c): world reuse is observationally identical to
    cold-start, and per-job state never bleeds."""

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_back_to_back_different_sizes_byte_identical(self, backend):
        sizes = [(1 << 10, 2), (1 << 12, 2), (1 << 10, 2)]
        with spawn_world(2, backend=backend) as world:
            for i, (N, P) in enumerate(sizes):
                keys = make_keys(N, seed=100 + i)
                n = N // P
                warm = np.concatenate(world.run(
                    _sort_job,
                    rank_args=[(keys[r * n : (r + 1) * n],) for r in range(P)],
                ))
                # Cold reference: the one-shot driver on a fresh world.
                cold = np.concatenate(run_spmd(
                    P,
                    lambda c: spmd_bitonic_sort(
                        c, keys[c.rank * n : (c.rank + 1) * n]
                    ),
                    backend=backend,
                ))
                assert warm.tobytes() == cold.tobytes()
                assert warm.tobytes() == np.sort(keys).tobytes()

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_counters_do_not_bleed_between_jobs(self, backend):
        keys = make_keys(1 << 10, seed=7)
        args = [(keys[:512],), (keys[512:],)]
        with spawn_world(2, backend=backend) as world:
            first = world.run(_traced_sort_job, rank_args=args)
            second = world.run(_traced_sort_job, rank_args=args)
        # Identical jobs must report identical counters: any bleed from
        # job 1 into job 2's tracer would double the tallies.
        assert first == second
        assert first[0]["messages"] > 0

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_tracer_cleared_after_each_job(self, backend):
        keys = make_keys(1 << 10, seed=8)
        args = [(keys[:512],), (keys[512:],)]
        with spawn_world(2, backend=backend) as world:
            world.run(_traced_sort_job, rank_args=args)
            assert world.run(_probe_tracer_job) == [True, True]

    def test_batched_requests_match_single_requests(self):
        keys_a = make_keys(1 << 10, seed=20)
        keys_b = make_keys(1 << 10, seed=21)
        with spawn_world(2, backend="threads") as world:
            outs = world.run(
                sort_shards_job,
                rank_args=[
                    ([keys_a[:512], keys_b[:512]], True, True, False, None),
                    ([keys_a[512:], keys_b[512:]], True, True, False, None),
                ],
            )
        for i, keys in enumerate((keys_a, keys_b)):
            got = np.concatenate([outs[r][0][i] for r in range(2)])
            assert got.tobytes() == np.sort(keys).tobytes()


class TestDeadWorlds:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_failed_job_kills_world_replacement_works(self, backend):
        world = spawn_world(2, backend=backend)
        try:
            with pytest.raises(ValueError, match="rank 1 exploded"):
                world.run(_boom_job)
            assert not world.healthy()
            with pytest.raises(CommunicationError, match="dead"):
                world.run(noop_job)
        finally:
            world.close()
        # The replacement world is unaffected by the corpse.
        with spawn_world(2, backend=backend) as fresh:
            assert fresh.run(noop_job) == [0, 1]
        assert not _shm_rspmd()

    def test_unpicklable_job_rejected_world_stays_healthy(self):
        captured = object()
        with spawn_world(2, backend="procs") as world:
            with pytest.raises(ConfigurationError, match="picklable"):
                world.run(lambda c: captured)
            assert world.healthy()
            assert world.run(noop_job) == [0, 1]


class TestShmLeaks:
    """Satellite (a): no leaked segments, even on violent exits."""

    def test_killed_rank_mid_sort_leaves_no_segments(self):
        world = spawn_world(2, backend="procs")
        victim = world._procs[1].pid
        try:
            keys = make_keys(1 << 12, seed=3)
            with pytest.raises(CommunicationError, match="died"):
                world.run(
                    _die_mid_sort_job,
                    rank_args=[(keys[:2048],), (keys[2048:],)],
                    timeout=30.0,
                )
            assert not world.healthy()
        finally:
            world.close()
        assert not _shm_rspmd(), "killed world leaked /dev/shm segments"
        # The surviving rank 0 process must be reaped too.
        for p in world._procs:
            assert not p.is_alive()
        assert victim is not None

    def test_atexit_sweep_reaps_unclosed_worlds(self, tmp_path):
        """A process that spawns a world and exits without closing it
        must still leave /dev/shm clean — the module atexit sweep."""
        script = textwrap.dedent("""
            from repro.runtime import spawn_world
            from repro.service.jobs import noop_job

            world = spawn_world(2, backend="procs")
            assert world.run(noop_job) == [0, 1]
            # Exit WITHOUT world.close(): the atexit sweep must clean up.
        """)
        env = dict(os.environ, PYTHONPATH="src")
        proc = subprocess.run(
            [sys.executable, "-c", script],
            cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            env=env,
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert proc.returncode == 0, proc.stderr
        assert not _shm_rspmd(), "atexit sweep missed segments"

    def test_timeout_terminates_and_sweeps(self):
        from repro.errors import SpmdTimeoutError

        world = spawn_world(2, backend="procs")
        try:
            with pytest.raises(SpmdTimeoutError):
                world.run(_slow_job, timeout=0.5)
        finally:
            world.close()
        assert not _shm_rspmd()
        for p in world._procs:
            assert not p.is_alive()


class TestOneShotCompatibility:
    """The original one-shot drivers survive the refactor unchanged —
    including closure support (procs ships the first job at fork)."""

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_closures_still_work(self, backend):
        keys = make_keys(1 << 10, seed=5)

        def prog(c):
            n = keys.size // c.size
            return spmd_bitonic_sort(c, keys[c.rank * n : (c.rank + 1) * n])

        out = np.concatenate(run_spmd(2, prog, backend=backend))
        assert out.tobytes() == np.sort(keys).tobytes()

    def test_worlds_are_exported_types(self):
        assert issubclass(ThreadWorld, World)
        assert issubclass(ProcWorld, World)
