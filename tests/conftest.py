"""Shared fixtures and hypothesis configuration for the test suite."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

# A single moderate profile: the property tests run vectorized NumPy per
# example, so a smaller example count keeps the suite fast while still
# exploring the space well.
settings.register_profile(
    "repro",
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


def pytest_addoption(parser):
    parser.addoption(
        "--full-sizes",
        action="store_true",
        default=False,
        help="run size-sweep tests at the paper's full problem sizes",
    )
