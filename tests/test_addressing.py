"""Tests for network node addressing and the direction rule."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.network.addressing import (
    NetworkShape,
    compare_bit,
    direction_bit,
    is_ascending,
    network_columns,
    partner,
    steps_of_stage,
    total_steps,
)


class TestNetworkShape:
    def test_counts(self):
        shape = NetworkShape(16)
        assert shape.num_stages == 4
        assert shape.num_steps == 10
        assert shape.comparators_per_step == 8

    def test_columns_order(self):
        cols = list(NetworkShape(8).columns())
        assert cols == [(1, 1), (2, 2), (2, 1), (3, 3), (3, 2), (3, 1)]

    @pytest.mark.parametrize("bad", [0, 1, 3, 12])
    def test_rejects_bad_sizes(self, bad):
        with pytest.raises(ConfigurationError):
            NetworkShape(bad)


class TestStepsAndColumns:
    def test_steps_of_stage_descend(self):
        assert list(steps_of_stage(4)) == [4, 3, 2, 1]

    def test_rejects_stage_zero(self):
        with pytest.raises(ConfigurationError):
            steps_of_stage(0)

    def test_total_steps(self):
        assert total_steps(2) == 1
        assert total_steps(256) == 8 * 9 // 2

    def test_network_columns_matches_shape(self):
        assert len(list(network_columns(64))) == total_steps(64)


class TestCompareAndPartner:
    def test_compare_bit(self):
        assert compare_bit(1) == 0
        assert compare_bit(5) == 4

    def test_compare_bit_rejects_zero(self):
        with pytest.raises(ConfigurationError):
            compare_bit(0)

    def test_partner_flips_one_bit(self):
        assert partner(0b1010, 2) == 0b1000
        assert partner(partner(13, 3), 3) == 13

    def test_partner_vectorized(self):
        rows = np.arange(16)
        np.testing.assert_array_equal(partner(rows, 1), rows ^ 1)


class TestDirection:
    def test_direction_bit(self):
        assert direction_bit(3) == 3

    def test_final_stage_all_ascending(self):
        # Stage lg N uses bit lg N, which is 0 for every row < N.
        rows = np.arange(32)
        assert is_ascending(rows, 5).all()

    def test_alternating_blocks(self):
        # Stage 1: blocks of 4 rows alternate direction by bit 1.
        assert is_ascending(0, 1) and is_ascending(1, 1)
        assert not is_ascending(2, 1) and not is_ascending(3, 1)
        assert is_ascending(4, 1)

    def test_pair_agrees_on_direction(self):
        # Partners at step j differ in bit j-1 < stage, so the direction
        # bit (stage) is identical for both.
        for stage in range(1, 6):
            for step in range(1, stage + 1):
                rows = np.arange(64)
                np.testing.assert_array_equal(
                    is_ascending(rows, stage),
                    is_ascending(partner(rows, step), stage),
                )
