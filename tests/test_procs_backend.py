"""Tests for the process-based SPMD backend and the backend dispatch.

The procs backend must be a drop-in substrate: same primitives, same
failure contract, and byte-identical sort output against both the threads
backend and the simulator implementation of Algorithm 1.
"""

import os
import time

import numpy as np
import pytest

from repro.errors import CommunicationError, ConfigurationError, SpmdTimeoutError
from repro.faults import FaultInjector, FaultPlan, ReliableComm, run_chaos_sort
from repro.runtime import BACKENDS, Comm, run_spmd, spmd_bitonic_sort
from repro.sorts import SmartBitonicSort
from repro.utils.rng import make_keys


class TestDispatch:
    def test_backends_listed(self):
        assert "threads" in BACKENDS and "procs" in BACKENDS

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown SPMD backend"):
            run_spmd(2, lambda c: None, backend="mpi")

    def test_threads_rejects_procs_options(self):
        with pytest.raises(ConfigurationError, match="no extra options"):
            run_spmd(2, lambda c: None, backend="threads", arena_bytes=1 << 20)

    def test_default_backend_is_threads(self):
        comms = run_spmd(2, lambda c: type(c).__name__)
        assert comms == ["ThreadComm", "ThreadComm"]

    def test_procs_backend_selected(self):
        names = run_spmd(2, lambda c: (type(c).__name__, c.in_process),
                         backend="procs")
        assert names == [("ProcComm", False), ("ProcComm", False)]


class TestProcsPrimitives:
    def test_allgather(self):
        out = run_spmd(4, lambda c: c.allgather(c.rank * 10), backend="procs")
        assert out == [[0, 10, 20, 30]] * 4

    def test_bcast(self):
        out = run_spmd(4, lambda c: c.bcast(c.rank + 99, root=2), backend="procs")
        assert out == [101] * 4

    def test_bcast_bad_root(self):
        with pytest.raises(CommunicationError):
            run_spmd(2, lambda c: c.bcast(1, root=5), backend="procs")

    def test_alltoallv_routes_by_destination(self):
        def prog(c):
            buckets = [np.array([c.rank * 10 + q]) for q in range(c.size)]
            return [int(x[0]) for x in c.alltoallv(buckets)]

        out = run_spmd(3, prog, backend="procs")
        assert out == [[0, 10, 20], [1, 11, 21], [2, 12, 22]]

    def test_alltoallv_none_buckets(self):
        def prog(c):
            buckets = [None] * c.size
            if c.rank == 0:
                buckets[1] = np.array([7])
            received = c.alltoallv(buckets)
            return received[0] is not None

        assert run_spmd(2, prog, backend="procs") == [False, True]

    def test_alltoallv_wrong_bucket_count(self):
        with pytest.raises(CommunicationError):
            run_spmd(2, lambda c: c.alltoallv([None]), backend="procs")

    def test_sendrecv_pairwise(self):
        def prog(c):
            partner = c.rank ^ 1
            got = c.sendrecv(np.array([c.rank]), dst=partner, src=partner)
            return int(got[0])

        assert run_spmd(4, prog, backend="procs") == [1, 0, 3, 2]

    def test_repeated_collectives_reuse_arenas(self):
        def prog(c):
            total = 0
            for i in range(20):
                got = c.alltoallv([np.array([i]) for _ in range(c.size)])
                total += sum(int(x[0]) for x in got)
            return total

        out = run_spmd(3, prog, backend="procs")
        assert out == [3 * sum(range(20))] * 3

    def test_arena_growth_beyond_initial_capacity(self):
        """Payloads far beyond the initial arena force the generation-bump
        growth path; the data must still arrive intact."""

        def prog(c):
            a = (np.arange(100_000, dtype=np.uint32) + c.rank).copy()
            got = c.alltoallv([a for _ in range(c.size)])
            return [int(x[-1]) for x in got]

        out = run_spmd(2, prog, backend="procs", arena_bytes=1 << 12)
        assert out == [[99999, 100000], [99999, 100000]]

    def test_pickle_fallback_payloads(self):
        """Non-ndarray values travel through the pickle path."""
        out = run_spmd(
            3, lambda c: c.allgather({"rank": c.rank, "tag": "x" * c.rank}),
            backend="procs",
        )
        assert out[0] == [{"rank": 0, "tag": ""}, {"rank": 1, "tag": "x"},
                          {"rank": 2, "tag": "xx"}]

    def test_dtype_preserved_across_transfer(self):
        def prog(c):
            buckets = [np.array([c.rank], dtype=np.uint16)] * c.size
            got = c.alltoallv(buckets)
            return [str(x.dtype) for x in got]

        assert run_spmd(2, prog, backend="procs") == [["uint16"] * 2] * 2

    def test_single_rank(self):
        assert run_spmd(1, lambda c: c.allgather("x"), backend="procs") == [["x"]]

    def test_zero_ranks_rejected(self):
        with pytest.raises(ConfigurationError):
            run_spmd(0, lambda c: None, backend="procs")


class TestProcsFailurePaths:
    def test_failure_propagates_and_unblocks_peers(self):
        def prog(c):
            if c.rank == 1:
                raise ValueError("rank 1 exploded")
            c.barrier()  # would deadlock if the abort didn't break it

        with pytest.raises(ValueError, match="rank 1 exploded"):
            run_spmd(3, prog, backend="procs")

    def test_hard_death_is_communication_error(self):
        """A rank that dies without reporting (hard exit) surfaces as a
        CommunicationError naming it, and unblocks the survivors."""

        def prog(c):
            if c.rank == 1:
                os._exit(17)
            c.barrier()

        with pytest.raises(CommunicationError, match="rank 1 died"):
            run_spmd(2, prog, backend="procs")

    def test_timeout_is_one_world_deadline(self):
        def wedge(c):
            if c.rank > 0:
                time.sleep(30)

        start = time.monotonic()
        with pytest.raises(SpmdTimeoutError) as err:
            run_spmd(3, wedge, timeout=0.5, backend="procs")
        assert time.monotonic() - start < 3 * 0.5 + 2.0
        assert err.value.phase == "run_spmd"

    def test_no_shared_memory_leaked(self):
        run_spmd(2, lambda c: c.allgather(np.arange(100_000)), backend="procs")
        if os.path.isdir("/dev/shm"):
            assert not [f for f in os.listdir("/dev/shm") if f.startswith("rspmd")]


class TestCrossBackendEquivalence:
    """Property: for randomized (N, P, seed) grids, the threads backend,
    the procs backend and the simulator's SmartBitonicSort produce
    byte-identical output."""

    @pytest.mark.parametrize("case", range(4))
    def test_randomized_grids(self, case):
        rng = np.random.default_rng(1000 + case)
        P = 1 << int(rng.integers(1, 4))
        n = 1 << int(rng.integers(4, 9))
        seed = int(rng.integers(0, 2**31))
        keys = make_keys(P * n, seed=seed)
        sim = SmartBitonicSort().run(keys, P).sorted_keys

        def prog(c):
            return spmd_bitonic_sort(c, keys[c.rank * n : (c.rank + 1) * n])

        for backend in ("threads", "procs"):
            out = np.concatenate(run_spmd(P, prog, backend=backend))
            assert out.dtype == sim.dtype
            assert out.tobytes() == sim.tobytes(), (
                f"{backend} diverged for N={P * n}, P={P}, seed={seed}"
            )

    def test_low_entropy_keys(self):
        P, n = 4, 128
        keys = make_keys(P * n, seed=9, distribution="low-entropy")

        def prog(c):
            return spmd_bitonic_sort(c, keys[c.rank * n : (c.rank + 1) * n])

        thr = np.concatenate(run_spmd(P, prog, backend="threads"))
        prc = np.concatenate(run_spmd(P, prog, backend="procs"))
        assert thr.tobytes() == prc.tobytes()
        np.testing.assert_array_equal(prc, np.sort(keys))


class _FakeCrossProcessComm(Comm):
    in_process = False
    rank, size = 0, 2

    def barrier(self):  # pragma: no cover — never called
        pass

    def alltoallv(self, buckets):  # pragma: no cover — never called
        return list(buckets)

    def allgather(self, value):  # pragma: no cover — never called
        return [value] * self.size

    def bcast(self, value, root=0):  # pragma: no cover — never called
        return value


class TestFaultComposition:
    def test_armed_injector_rejected_on_cross_process_comm(self):
        injector = FaultInjector(FaultPlan(seed=1, drop=0.5))
        with pytest.raises(ConfigurationError, match="in-process backend"):
            ReliableComm(_FakeCrossProcessComm(), injector)

    def test_null_plan_composes_with_cross_process_comm(self):
        injector = FaultInjector(FaultPlan(seed=1))
        rc = ReliableComm(_FakeCrossProcessComm(), injector)
        assert rc.size == 2

    def test_chaos_rejects_faults_on_procs_backend(self):
        keys = make_keys(256, seed=0)
        with pytest.raises(ConfigurationError, match="chaos faults"):
            run_chaos_sort(keys, 2, FaultPlan(seed=0, drop=0.1), backend="procs")

    def test_seeded_rate_zero_plan_is_noop_on_procs(self):
        """A seeded fault plan with all rates zero runs the reliable
        transport's passthrough on the procs backend: sorted output, zero
        injected faults, zero recovery work."""
        keys = make_keys(512, seed=5)
        report = run_chaos_sort(
            keys, 2, FaultPlan(seed=12345), backend="procs", checkpoint=False
        )
        np.testing.assert_array_equal(report.sorted_keys, np.sort(keys))
        assert report.restarts == 0
        assert report.retry_rounds == 0
        assert all(v == 0 for v in report.fault_stats.values())
