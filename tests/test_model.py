"""Tests for the LogP/LogGP cost model, cache model, and machine presets."""

import pytest

from repro.errors import ConfigurationError
from repro.model import (
    GENERIC_CLUSTER,
    MEIKO_CS2,
    CacheModel,
    ComputeCosts,
    LogGPParams,
    LogPParams,
    MachineSpec,
)


class TestLogPParams:
    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            LogPParams(L=-1, o=1, g=1, P=4)
        with pytest.raises(ConfigurationError):
            LogPParams(L=1, o=1, g=1, P=0)

    def test_per_message_cost_is_max(self):
        assert LogPParams(L=5, o=2, g=3, P=4).per_message_cost == 4.0  # 2o
        assert LogPParams(L=5, o=1, g=3, P=4).per_message_cost == 3.0  # g

    def test_short_remap_time_formula(self):
        p = LogPParams(L=5, o=1, g=3, P=4)
        # T = L + 2o + (V-1) * max(g, 2o)
        assert p.short_remap_time(1) == 7.0
        assert p.short_remap_time(10) == 7.0 + 9 * 3.0

    def test_short_remap_zero_volume(self):
        assert LogPParams(L=5, o=1, g=3, P=4).short_remap_time(0) == 0.0

    def test_total_short_time_matches_per_remap_sum(self):
        p = LogPParams(L=5, o=1, g=3, P=4)
        # 4 remaps of 25 elements each == total formula with R=4, V=100.
        per = sum(p.short_remap_time(25) for _ in range(4))
        assert p.total_short_time(4, 100) == pytest.approx(per)


class TestLogGPParams:
    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            LogGPParams(L=1, o=1, g=1, G=-0.1, P=4)

    def test_long_message_times(self):
        p = LogGPParams(L=10, o=2, g=4, G=0.5, P=4)
        assert p.long_message_send_busy(1) == 2.0
        assert p.long_message_send_busy(11) == 2.0 + 10 * 0.5
        assert p.long_message_latency(11) == 2.0 + 5.0 + 10.0 + 2.0

    def test_remap_time_formula(self):
        p = LogGPParams(L=10, o=2, g=4, G=0.5, P=4)
        # T = L + 2o + G (V - M) + g (M - 1)
        assert p.remap_time(100, 4) == 10 + 4 + 0.5 * 96 + 4 * 3
        assert p.remap_time(0, 0) == 0.0

    def test_total_long_time(self):
        p = LogGPParams(L=10, o=2, g=4, G=0.5, P=4)
        # T = (L + 2o) R + G (V - M) + g (M - R)
        assert p.total_long_time(2, 100, 10) == 14 * 2 + 0.5 * 90 + 4 * 8

    def test_with_procs(self):
        assert MEIKO_CS2.network.with_procs(8).P == 8
        assert MEIKO_CS2.network.with_procs(8).L == MEIKO_CS2.network.L

    def test_logp_restriction(self):
        lp = MEIKO_CS2.network.logp
        assert (lp.L, lp.o, lp.g, lp.P) == (
            MEIKO_CS2.network.L,
            MEIKO_CS2.network.o,
            MEIKO_CS2.network.g,
            MEIKO_CS2.network.P,
        )


class TestCacheModel:
    def test_no_penalty_inside_cache(self):
        cm = CacheModel(capacity_bytes=1 << 20, key_bytes=4, alpha=0.5)
        assert cm.factor(1000) == 1.0
        assert cm.factor(cm.capacity_keys) == 1.0

    def test_penalty_grows_and_saturates(self):
        cm = CacheModel(capacity_bytes=1 << 20, key_bytes=4, alpha=0.5)
        f2 = cm.factor(2 * cm.capacity_keys)
        f8 = cm.factor(8 * cm.capacity_keys)
        assert 1.0 < f2 < f8 < 1.5

    def test_rejects_bad_params(self):
        with pytest.raises(ConfigurationError):
            CacheModel(capacity_bytes=0)
        with pytest.raises(ConfigurationError):
            CacheModel(alpha=-1)
        with pytest.raises(ConfigurationError):
            CacheModel().factor(0)


class TestComputeCosts:
    def test_defaults_positive(self):
        c = ComputeCosts()
        assert c.radix_pass > 0 and c.merge > 0 and c.pack > c.unpack

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            ComputeCosts(merge=-0.1)


class TestMachineSpec:
    def test_presets_valid(self):
        for spec in (MEIKO_CS2, GENERIC_CLUSTER):
            assert spec.key_bytes == 4
            assert spec.network.P >= 1

    def test_with_procs(self):
        assert MEIKO_CS2.with_procs(16).network.P == 16
        assert MEIKO_CS2.with_procs(16).name == MEIKO_CS2.name

    def test_rejects_bad_key_bytes(self):
        with pytest.raises(ConfigurationError):
            MachineSpec(name="x", network=MEIKO_CS2.network, key_bytes=0)

    def test_meiko_calibration_regime(self):
        """Sanity of the calibration targets documented in machines.py."""
        net = MEIKO_CS2.network
        # Short messages ~3.3-3.4 us per element.
        assert 3.0 <= max(net.g, 2 * net.o) <= 4.0
        # Long-message bandwidth ~100 MB/s: 16 bytes in ~0.15 us.
        assert 0.10 <= 16 * net.G <= 0.20
