"""The unified front door (`repro.api.sort`) and the typed backend
options / deprecation shim of `run_spmd`."""

import warnings

import numpy as np
import pytest

import repro
from repro.api import SORT_ALGORITHMS, SORT_BACKENDS, SortReport, sort
from repro.errors import ConfigurationError
from repro.faults import FaultPlan
from repro.runtime import BackendOptions, run_spmd
from repro.utils.rng import make_keys


class TestSortSimulated:
    @pytest.mark.parametrize("algorithm", SORT_ALGORITHMS)
    def test_every_algorithm_sorts(self, algorithm):
        keys = make_keys(1 << 10, seed=2)
        if algorithm == "external":
            # The out-of-core path is single-rank and in-process: no
            # simulated machine, no world, P implied 1.
            report = sort(keys, algorithm=algorithm)
            assert isinstance(report, SortReport)
            np.testing.assert_array_equal(report.sorted_keys, np.sort(keys))
            assert (report.backend, report.P) == ("local", 1)
            assert report.verified and report.stats is None
            return
        report = sort(keys, 4, algorithm=algorithm)
        assert isinstance(report, SortReport)
        np.testing.assert_array_equal(report.sorted_keys, np.sort(keys))
        assert report.backend == "simulated" and report.verified
        assert report.P == 4 and report.n == 256 and report.N == 1 << 10
        assert report.stats is not None and report.stats.elapsed_us > 0
        assert report.phases is None and report.tracers is None

    def test_trace_attaches_simulated_and_predicted(self):
        keys = make_keys(1 << 10, seed=3)
        report = sort(keys, 4, trace=True)
        assert report.phases is not None
        assert report.phases.simulated_us
        assert report.phases.predicted_us
        assert report.phases.measured_us is None  # nothing real to measure

    def test_faults_survived_and_counted(self):
        keys = make_keys(1 << 10, seed=4)
        report = sort(keys, 4, faults=FaultPlan(seed=5, drop=0.2))
        np.testing.assert_array_equal(report.sorted_keys, np.sort(keys))
        assert report.fault_stats["decisions"] > 0

    def test_describe_mentions_the_run(self):
        keys = make_keys(1 << 10, seed=6)
        text = sort(keys, 4).describe()
        assert "smart sort" in text and "simulated" in text and "verified" in text


class TestSortSpmd:
    @pytest.mark.parametrize("backend", ["threads", "procs"])
    def test_sorts_and_verifies(self, backend):
        keys = make_keys(1 << 10, seed=7)
        report = sort(keys, 4, backend=backend)
        np.testing.assert_array_equal(report.sorted_keys, np.sort(keys))
        assert report.backend == backend
        assert report.wall_seconds > 0
        assert report.stats is None  # nothing simulated on a real run

    @pytest.mark.parametrize("backend", ["threads", "procs"])
    def test_trace_aligns_three_sources(self, backend):
        keys = make_keys(1 << 10, seed=8)
        report = sort(keys, 4, backend=backend, trace=True)
        ph = report.phases
        assert ph is not None and len(report.tracers) == 4
        assert ph.measured_us and ph.simulated_us and ph.predicted_us
        assert ph.counters["remaps"] > 0
        assert ph.deviation("local_sort") is not None
        table = ph.describe()
        assert "measured" in table and "predicted" in table

    def test_threads_faults_survived(self):
        keys = make_keys(1 << 10, seed=9)
        report = sort(
            keys, 4, backend="threads", faults=FaultPlan(seed=1, drop=0.1)
        )
        np.testing.assert_array_equal(report.sorted_keys, np.sort(keys))
        assert report.fault_stats["decisions"] > 0

    def test_procs_accepts_backend_options(self):
        keys = make_keys(1 << 9, seed=10)
        report = sort(
            keys, 2, backend="procs",
            backend_options=BackendOptions(arena_bytes=1 << 16),
        )
        np.testing.assert_array_equal(report.sorted_keys, np.sort(keys))


class TestSortRejections:
    def test_unknown_backend(self):
        with pytest.raises(ConfigurationError, match="unknown sort backend"):
            sort(make_keys(64), 2, backend="quantum")

    def test_unknown_algorithm(self):
        with pytest.raises(ConfigurationError, match="unknown algorithm"):
            sort(make_keys(64), 2, algorithm="bogo")

    def test_spmd_backends_reject_simulated_only_algorithms(self):
        with pytest.raises(ConfigurationError,
                           match="implements.*backend='simulated'"):
            sort(make_keys(64), 2, algorithm="radix", backend="threads")

    def test_auto_needs_a_service(self):
        with pytest.raises(ConfigurationError, match="planner routing"):
            sort(make_keys(64), 2, algorithm="auto", backend="threads")

    def test_procs_rejects_faults(self):
        with pytest.raises(ConfigurationError, match="threads backend"):
            sort(make_keys(64), 2, backend="procs",
                 faults=FaultPlan(seed=1, drop=0.5))

    def test_simulated_rejects_backend_options(self):
        with pytest.raises(ConfigurationError, match="backend_options"):
            sort(make_keys(64), 2, backend_options=BackendOptions())


class TestOptionsShim:
    def test_options_is_the_canonical_spelling(self):
        keys = make_keys(1 << 9, seed=11)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            report = sort(keys, 2, backend="threads",
                          options=BackendOptions(fused=False))
        np.testing.assert_array_equal(report.sorted_keys, np.sort(keys))

    def test_backend_options_warns_and_still_works(self):
        keys = make_keys(1 << 9, seed=12)
        with pytest.warns(DeprecationWarning, match="options="):
            report = sort(keys, 2, backend="threads",
                          backend_options=BackendOptions(fused=False))
        np.testing.assert_array_equal(report.sorted_keys, np.sort(keys))

    def test_both_spellings_rejected(self):
        with pytest.raises(ConfigurationError, match="not both"):
            sort(make_keys(64), 2, backend="threads",
                 options=BackendOptions(), backend_options=BackendOptions())


class TestBackendOptions:
    def test_typed_options_drive_procs(self):
        out = run_spmd(
            2, lambda c: c.rank, backend="procs",
            options=BackendOptions(arena_bytes=1 << 16),
        )
        assert out == [0, 1]

    def test_threads_rejects_any_set_field(self):
        with pytest.raises(ConfigurationError, match="no extra options"):
            run_spmd(2, lambda c: c.rank, backend="threads",
                     options=BackendOptions(arena_bytes=1 << 16))

    def test_legacy_kwargs_warn_and_still_work(self):
        with pytest.warns(DeprecationWarning, match="BackendOptions"):
            out = run_spmd(
                2, lambda c: c.rank, backend="procs", arena_bytes=1 << 16
            )
        assert out == [0, 1]

    def test_legacy_kwargs_keep_threads_rejection(self):
        """The old error contract survives the shim: threads + a procs-only
        option is still a ConfigurationError (after the deprecation warn)."""
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            with pytest.raises(ConfigurationError, match="no extra options"):
                run_spmd(2, lambda c: c.rank, backend="threads",
                         arena_bytes=1 << 16)

    def test_unknown_legacy_kwarg_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown run_spmd option"):
            run_spmd(2, lambda c: c.rank, backend="procs", bogus=1)

    def test_both_spellings_rejected(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            with pytest.raises(ConfigurationError, match="not both"):
                run_spmd(
                    2, lambda c: c.rank, backend="procs",
                    options=BackendOptions(), arena_bytes=1 << 16,
                )

    def test_set_fields(self):
        assert BackendOptions().set_fields() == []
        assert BackendOptions(arena_bytes=4096).set_fields() == ["arena_bytes"]


class TestTopLevelExports:
    def test_front_door_reexported(self):
        assert repro.sort is sort
        assert repro.SortReport is SortReport
        assert repro.SORT_BACKENDS is SORT_BACKENDS
        for name in ("BackendOptions", "Tracer", "PhaseReport",
                     "build_phase_report", "write_chrome_trace"):
            assert hasattr(repro, name)

    def test_module_quickstart_runs(self):
        """The code from repro.__doc__'s quickstart (scaled down)."""
        keys = make_keys(1 << 10)
        report = repro.sort(keys, P=4)
        assert report.stats.us_per_key > 0
        report = repro.sort(keys, P=2, backend="threads", trace=True)
        assert "phase breakdown" in report.phases.describe()
