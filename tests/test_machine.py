"""Tests for the simulated machine: clocks, accounting, exchange."""

import numpy as np
import pytest

from repro.errors import CommunicationError, ConfigurationError
from repro.machine import CATEGORIES, Machine, Message, PhaseBreakdown, Processor
from repro.model.machines import MEIKO_CS2


class TestMessage:
    def test_basic(self):
        m = Message(src=0, dst=1, payload=np.arange(4))
        assert m.num_elements == 4

    def test_rejects_2d_payload(self):
        with pytest.raises(CommunicationError):
            Message(src=0, dst=1, payload=np.zeros((2, 2)))

    def test_rejects_negative_endpoints(self):
        with pytest.raises(CommunicationError):
            Message(src=-1, dst=1, payload=np.arange(4))


class TestPhaseBreakdown:
    def test_categories_partition(self):
        bd = PhaseBreakdown()
        assert set(bd.times) == set(CATEGORIES)

    def test_add_and_totals(self):
        bd = PhaseBreakdown()
        bd.add("merge", 2.0)
        bd.add("pack", 1.0)
        bd.add("wait", 5.0)
        assert bd.computation == 2.0
        assert bd.communication == 1.0
        assert bd.total() == 8.0

    def test_unknown_category_rejected(self):
        with pytest.raises(ConfigurationError):
            PhaseBreakdown().add("teleport", 1.0)

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            PhaseBreakdown().add("merge", -1.0)

    def test_merged_with(self):
        a, b = PhaseBreakdown(), PhaseBreakdown()
        a.add("merge", 1.0)
        b.add("merge", 2.0)
        assert a.merged_with(b).times["merge"] == 3.0


class TestProcessor:
    def test_advance(self):
        p = Processor(rank=0)
        p.advance("merge", 3.0)
        assert p.clock == 3.0
        assert p.breakdown.times["merge"] == 3.0

    def test_wait_until(self):
        p = Processor(rank=0)
        p.advance("merge", 3.0)
        p.wait_until(10.0)
        assert p.clock == 10.0
        assert p.breakdown.times["wait"] == 7.0
        p.wait_until(5.0)  # no-op backwards
        assert p.clock == 10.0

    def test_negative_advance_rejected(self):
        with pytest.raises(ConfigurationError):
            Processor(rank=0).advance("merge", -1.0)


class TestMachineCompute:
    def test_charge_uses_unit_cost(self):
        m = Machine(2)
        m.charge_compute(0, "merge", 100, 0.5)
        assert m.procs[0].clock == pytest.approx(50.0)

    def test_cache_factor_applies(self):
        m = Machine(1)
        cap = m.spec.cache.capacity_keys
        m.charge_compute(0, "merge", cap * 4, 1.0, working_set=cap * 4)
        assert m.procs[0].clock > cap * 4  # inflated by the cache penalty

    def test_zero_elements_free(self):
        m = Machine(1)
        m.charge_compute(0, "merge", 0, 1.0)
        assert m.procs[0].clock == 0.0

    def test_bad_rank_rejected(self):
        with pytest.raises(ConfigurationError):
            Machine(2).charge_compute(5, "merge", 1, 1.0)

    def test_charge_fixed(self):
        m = Machine(1)
        m.charge_fixed(0, "transfer", 2.5)
        assert m.procs[0].clock == 2.5


class TestMachineExchange:
    def test_delivers_payloads(self):
        m = Machine(3)
        out = m.exchange([
            Message(0, 1, np.array([1, 2])),
            Message(2, 1, np.array([3])),
            Message(1, 0, np.array([4])),
        ])
        assert sorted(msg.src for msg in out[1]) == [0, 2]
        assert out[0][0].payload.tolist() == [4]

    def test_self_message_rejected(self):
        m = Machine(2)
        with pytest.raises(CommunicationError, match="itself"):
            m.exchange([Message(0, 0, np.array([1]))])

    def test_out_of_range_rejected(self):
        m = Machine(2)
        with pytest.raises(CommunicationError, match="outside machine"):
            m.exchange([Message(0, 5, np.array([1]))])

    def test_bad_mode_rejected(self):
        with pytest.raises(CommunicationError):
            Machine(2).exchange([], mode="medium")

    def test_counts_metrics(self):
        m = Machine(4)
        m.exchange([Message(0, 1, np.arange(10)), Message(0, 2, np.arange(5))])
        assert m.procs[0].elements_sent == 15
        assert m.procs[0].messages_sent == 2
        assert m.remap_count == 1

    def test_short_mode_counts_element_messages(self):
        m = Machine(2)
        m.exchange([Message(0, 1, np.arange(10))], mode="short")
        assert m.procs[0].messages_sent == 10

    def test_short_mode_time_is_logp_formula(self):
        m = Machine(2)
        m.exchange([Message(0, 1, np.arange(10))], mode="short")
        net = m.net
        expect = net.L + 2 * net.o + 9 * max(net.g, 2 * net.o)
        assert m.procs[0].breakdown.times["transfer"] == pytest.approx(expect)

    def test_long_mode_sender_time(self):
        m = Machine(2)
        m.exchange([Message(0, 1, np.arange(100, dtype=np.uint32))])
        net = m.net
        expect = net.o + (100 * 4 - 1) * net.G
        assert m.procs[0].breakdown.times["transfer"] == pytest.approx(expect)

    def test_long_mode_receiver_pays_overhead_and_latency(self):
        m = Machine(2)
        m.exchange([Message(0, 1, np.arange(100, dtype=np.uint32))])
        net = m.net
        send_busy = net.o + (100 * 4 - 1) * net.G
        assert m.procs[1].clock == pytest.approx(send_busy + net.L + net.o)

    def test_gap_between_messages(self):
        """Two tiny messages from one sender are spaced by at least g."""
        m = Machine(3)
        m.exchange([
            Message(0, 1, np.array([1], dtype=np.uint32)),
            Message(0, 2, np.array([2], dtype=np.uint32)),
        ])
        assert m.procs[0].clock >= m.net.g

    def test_count_remap_flag(self):
        m = Machine(2)
        m.exchange([Message(0, 1, np.array([1]))], count_remap=False)
        assert m.remap_count == 0

    def test_deterministic(self):
        def run():
            m = Machine(4)
            msgs = [Message(s, d, np.arange(8))
                    for s in range(4) for d in range(4) if s != d]
            m.exchange(msgs)
            return [p.clock for p in m.procs]

        assert run() == run()


class TestMachineMisc:
    def test_barrier_aligns_clocks(self):
        m = Machine(3)
        m.charge_compute(1, "merge", 10, 1.0)
        m.barrier()
        assert all(p.clock == 10.0 for p in m.procs)
        assert m.procs[0].breakdown.times["wait"] == 10.0

    def test_elapsed_is_max(self):
        m = Machine(3)
        m.charge_compute(2, "merge", 7, 1.0)
        assert m.elapsed() == 7.0

    def test_stats_mean_breakdown(self):
        m = Machine(2)
        m.charge_compute(0, "merge", 10, 1.0)
        st = m.stats(16)
        assert st.mean_breakdown.times["merge"] == pytest.approx(5.0)
        assert st.P == 2 and st.n == 16 and st.N == 32

    def test_partition_even(self):
        m = Machine(4)
        parts = m.partition(np.arange(16))
        assert [p.tolist() for p in parts] == [
            [0, 1, 2, 3], [4, 5, 6, 7], [8, 9, 10, 11], [12, 13, 14, 15]
        ]

    def test_partition_uneven_rejected(self):
        with pytest.raises(ConfigurationError):
            Machine(4).partition(np.arange(10))

    def test_zero_procs_rejected(self):
        with pytest.raises(ConfigurationError):
            Machine(0)

    def test_run_stats_per_key(self):
        m = Machine(2, MEIKO_CS2)
        m.charge_compute(0, "merge", 100, 1.0)
        m.charge_compute(1, "merge", 100, 1.0)
        st = m.stats(100)
        assert st.us_per_key == pytest.approx(1.0)
        assert st.computation_per_key == pytest.approx(1.0)
        assert st.seconds_total == pytest.approx(100e-6)
