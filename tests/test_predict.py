"""The analytic predictor must agree with the simulator exactly.

Every category the simulator charges is a deterministic sum, so the
predictions of :mod:`repro.theory.predict` are required to match the mean
per-processor breakdown of a real simulated run to float precision — for
all three bitonic algorithms, in both message modes, fused or not.
"""

import pytest

from repro.errors import ConfigurationError
from repro.machine.metrics import CATEGORIES
from repro.sorts import (
    BlockedMergeBitonicSort,
    CyclicBlockedBitonicSort,
    SmartBitonicSort,
)
from repro.theory.predict import (
    predict,
    predict_blocked_merge,
    predict_cyclic_blocked,
    predict_smart,
)
from repro.utils.rng import make_keys


def _compare(stats, predicted):
    for cat in CATEGORIES:
        if cat == "wait":
            continue  # waits depend on skew; excluded from busy-time totals
        got = stats.mean_breakdown.times[cat]
        want = predicted.times.get(cat, 0.0)
        assert got == pytest.approx(want, rel=1e-9, abs=1e-6), (
            f"category {cat}: simulated {got} vs predicted {want}"
        )


class TestSmartPrediction:
    @pytest.mark.parametrize("P,n", [(4, 256), (8, 512), (16, 1024), (16, 8)])
    def test_long_fused(self, P, n):
        stats = SmartBitonicSort().run(make_keys(P * n, seed=1), P).stats
        _compare(stats, predict_smart(P * n, P))

    @pytest.mark.parametrize("P,n", [(4, 256), (8, 512)])
    def test_long_unfused(self, P, n):
        stats = SmartBitonicSort(fused=False).run(make_keys(P * n, seed=1), P).stats
        _compare(stats, predict_smart(P * n, P, fused=False))

    @pytest.mark.parametrize("P,n", [(4, 256), (8, 512)])
    def test_short(self, P, n):
        stats = SmartBitonicSort(mode="short", fused=False).run(
            make_keys(P * n, seed=1), P
        ).stats
        _compare(stats, predict_smart(P * n, P, mode="short"))

    def test_tail_strategy(self):
        # The tail placement's truncated first phase simulates its steps,
        # so the merge/compare_exchange split differs; only communication
        # categories are required to match there.
        stats = SmartBitonicSort(strategy="tail").run(make_keys(2048, seed=1), 8).stats
        pred = predict_smart(2048, 8, strategy="tail")
        for cat in ("address", "pack", "unpack", "transfer"):
            assert stats.mean_breakdown.times[cat] == pytest.approx(
                pred.times.get(cat, 0.0), rel=1e-9, abs=1e-6
            )

    def test_single_proc(self):
        stats = SmartBitonicSort().run(make_keys(128, seed=1), 1).stats
        _compare(stats, predict_smart(128, 1))

    def test_cache_regime_included(self):
        """Above the cache capacity the prediction inflates like the run."""
        small = predict_smart(1 << 14, 4)
        # Same shape but per-key: the large run is in the cache-penalty
        # regime, so its per-key computation is strictly larger.
        big = predict_smart(1 << 24, 4)
        assert big.computation / big.n > small.computation / small.n

    def test_totals_track_makespan(self):
        """Busy-time prediction ≈ simulated makespan (balanced schedule)."""
        P, n = 8, 2048
        stats = SmartBitonicSort().run(make_keys(P * n, seed=2), P).stats
        pred = predict_smart(P * n, P)
        assert stats.elapsed_us == pytest.approx(pred.total, rel=0.15)


class TestBaselinePredictions:
    @pytest.mark.parametrize("P,n", [(4, 256), (8, 512), (16, 1024)])
    def test_cyclic_blocked(self, P, n):
        stats = CyclicBlockedBitonicSort().run(make_keys(P * n, seed=1), P).stats
        _compare(stats, predict_cyclic_blocked(P * n, P))

    @pytest.mark.parametrize("P,n", [(4, 256), (8, 512)])
    def test_cyclic_blocked_short(self, P, n):
        stats = CyclicBlockedBitonicSort(mode="short").run(
            make_keys(P * n, seed=1), P
        ).stats
        _compare(stats, predict_cyclic_blocked(P * n, P, mode="short"))

    @pytest.mark.parametrize("P,n", [(4, 256), (8, 512), (16, 1024)])
    def test_blocked_merge(self, P, n):
        stats = BlockedMergeBitonicSort().run(make_keys(P * n, seed=1), P).stats
        _compare(stats, predict_blocked_merge(P * n, P))


class TestPredictDispatch:
    def test_by_name(self):
        pt = predict("smart", 1 << 12, 8)
        assert pt.algorithm == "smart"
        assert pt.us_per_key > 0

    def test_unknown(self):
        with pytest.raises(ConfigurationError):
            predict("bogo", 1 << 12, 8)

    def test_sample_dispatches(self):
        # The planner prices sample sort through this same front door.
        pt = predict("sample", 1 << 12, 8)
        assert pt.algorithm == "sample"
        assert pt.us_per_key > 0

    def test_paper_scale_is_instant(self):
        """The whole point: predicting the paper's 1M keys/proc sweep takes
        microseconds, not minutes."""
        import time

        t0 = time.perf_counter()
        for algo in ("smart", "cyclic-blocked", "blocked-merge"):
            for nk in (128, 256, 512, 1024):
                predict(algo, 32 * nk * 1024, 32)
        assert time.perf_counter() - t0 < 1.0

    def test_paper_ordering_at_paper_scale(self):
        """At the paper's exact sizes the predicted ordering matches
        Table 5.1: Smart < Cyclic-Blocked < Blocked-Merge."""
        for nk in (128, 256, 512, 1024):
            N = 32 * nk * 1024
            s = predict("smart", N, 32).us_per_key
            c = predict("cyclic-blocked", N, 32).us_per_key
            b = predict("blocked-merge", N, 32).us_per_key
            assert s < c < b
