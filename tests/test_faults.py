"""The seeded chaos suite: every parallel sort must survive an adversarial
network or fail fast with a typed, diagnosable error.

Covers the acceptance contract of the fault subsystem:

* drop / duplication / delay at >= 5% rates — sorts still match ``np.sort``
  element-exactly (threads runtime and simulator);
* corruption is caught by checksums and, when unrecoverable, surfaced as a
  typed error naming the rank and phase — never a silent wrong sort;
* an injected rank crash either recovers from the last checkpoint or
  raises :class:`PeerFailedError`;
* a rate-0 plan is completely free: zero retries, byte-identical R/V/M
  counts, unchanged simulated makespan.
"""

import numpy as np
import pytest

from repro.errors import (
    CommunicationError,
    ConfigurationError,
    CorruptPayloadError,
    PeerFailedError,
    SpmdTimeoutError,
)
from repro.faults import (
    CheckpointStore,
    FaultInjector,
    FaultPlan,
    ReliableComm,
    corrupt_payload,
    run_chaos_sort,
)
from repro.faults.plan import InjectedCrash
from repro.runtime import run_spmd, spmd_bitonic_sort
from repro.sorts import CyclicBlockedBitonicSort, SmartBitonicSort
from repro.utils.rng import make_keys


class TestFaultPlan:
    def test_rates_validated(self):
        with pytest.raises(ConfigurationError):
            FaultPlan(drop=1.5)
        with pytest.raises(ConfigurationError):
            FaultPlan(corrupt=-0.1)
        with pytest.raises(ConfigurationError):
            FaultPlan(delay_us=-1.0)
        with pytest.raises(ConfigurationError):
            FaultPlan(slowdown={0: 0.5})

    def test_null_plan_detection(self):
        assert FaultPlan().is_null
        assert not FaultPlan(drop=0.01).is_null
        assert not FaultPlan(crash_rank=0).is_null
        assert not FaultPlan(slowdown={1: 2.0}).is_null

    def test_decisions_deterministic(self):
        a = FaultInjector(FaultPlan(seed=9, drop=0.3, corrupt=0.2))
        b = FaultInjector(FaultPlan(seed=9, drop=0.3, corrupt=0.2))
        verdicts_a = [a.decide("phase-1", 0, 1, s, t)
                      for s in range(30) for t in range(3)]
        verdicts_b = [b.decide("phase-1", 0, 1, s, t)
                      for s in range(30) for t in range(3)]
        assert verdicts_a == verdicts_b
        assert any(v.drop for v in verdicts_a)

    def test_different_seed_different_faults(self):
        a = FaultInjector(FaultPlan(seed=1, drop=0.5))
        b = FaultInjector(FaultPlan(seed=2, drop=0.5))
        va = [a.decide(0, 0, 1, s).drop for s in range(40)]
        vb = [b.decide(0, 0, 1, s).drop for s in range(40)]
        assert va != vb

    def test_phase_targeting(self):
        inj = FaultInjector(FaultPlan(seed=0, drop=1.0, phases={"phase-2"}))
        assert not inj.decide("phase-1", 0, 1, 0).drop
        assert inj.decide("phase-2", 0, 1, 0).drop

    def test_crash_is_one_shot(self):
        inj = FaultInjector(FaultPlan(crash_rank=1, crash_phase=2))
        assert not inj.check_crash(1, 1)  # too early
        assert not inj.check_crash(0, 5)  # wrong rank
        assert inj.check_crash(1, 2)
        assert not inj.check_crash(1, 2)  # consumed
        assert inj.stats.crashes == 1

    def test_corrupt_payload_changes_bytes(self):
        rng = np.random.default_rng(0)
        data = np.arange(64, dtype=np.uint32)
        bad = corrupt_payload(data, rng)
        assert bad.shape == data.shape
        assert not np.array_equal(bad, data)
        assert np.count_nonzero(bad != data) == 1  # single-event upset


class TestCheckpointStore:
    def test_save_load_roundtrip(self):
        store = CheckpointStore()
        store.save(0, 0, np.arange(8))
        got = store.load(0, 0)
        np.testing.assert_array_equal(got, np.arange(8))
        got[0] = 99  # the store hands out copies
        np.testing.assert_array_equal(store.load(0, 0), np.arange(8))

    def test_prunes_to_keep(self):
        store = CheckpointStore(keep=2)
        for stage in range(5):
            store.save(0, stage, np.array([stage]))
        assert store.load(0, 2) is None
        assert store.load(0, 3) is not None
        assert store.latest_stage(0) == 4

    def test_resumable_is_min_over_ranks(self):
        store = CheckpointStore()
        store.save(0, 3, np.array([1]))
        store.save(1, 2, np.array([1]))
        assert store.resumable_stage() == 2
        # A rank with no snapshot forces a from-scratch restart.
        assert store.resumable_stage(ranks=[0, 1, 2]) == -1
        assert CheckpointStore().resumable_stage() == -1

    def test_keep_must_cover_resume_window(self):
        with pytest.raises(ConfigurationError):
            CheckpointStore(keep=1)


class TestReliableCommPassthrough:
    """With no injector (or a null plan) the decorator must be invisible."""

    def test_collectives_match_plain_backend(self):
        def prog(c):
            rc = ReliableComm(c, FaultInjector(FaultPlan()))
            gathered = rc.allgather(rc.rank * 10)
            root_val = rc.bcast(rc.rank + 5, root=1)
            buckets = [np.array([rc.rank * 100 + q]) for q in range(rc.size)]
            received = rc.alltoallv(buckets)
            partner = rc.rank ^ 1
            swapped = rc.sendrecv(np.array([rc.rank]), dst=partner, src=partner)
            assert rc.retry_rounds == 0 and rc.resent_elements == 0
            return (gathered, root_val, [int(x[0]) for x in received],
                    int(swapped[0]))

        out = run_spmd(4, prog)
        for rank, (gathered, root_val, received, swapped) in enumerate(out):
            assert gathered == [0, 10, 20, 30]
            assert root_val == 6
            assert received == [p * 100 + rank for p in range(4)]
            assert swapped == rank ^ 1


CHAOS_PLANS = [
    pytest.param(FaultPlan(seed=3, drop=0.10), id="drop-10%"),
    pytest.param(FaultPlan(seed=4, duplicate=0.10), id="duplicate-10%"),
    pytest.param(FaultPlan(seed=5, delay=0.10), id="delay-10%"),
    pytest.param(FaultPlan(seed=6, corrupt=0.05), id="corrupt-5%"),
    pytest.param(
        FaultPlan(seed=7, drop=0.05, duplicate=0.05, corrupt=0.05, delay=0.05),
        id="everything-5%",
    ),
]


class TestChaosSort:
    """The real SPMD sort through an adversarial network (threads backend)."""

    @pytest.mark.parametrize("plan", CHAOS_PLANS)
    def test_sorts_exactly_under_faults(self, plan):
        P, n = 4, 128
        keys = make_keys(P * n, seed=plan.seed)
        report = run_chaos_sort(keys, P, plan, timeout=30)
        np.testing.assert_array_equal(report.sorted_keys, np.sort(keys))

    def test_smoke(self):
        """Fast seeded smoke test (run standalone by CI): 5% drops survived."""
        keys = make_keys(4 * 64, seed=1)
        report = run_chaos_sort(keys, 4, FaultPlan(seed=1, drop=0.05), timeout=30)
        np.testing.assert_array_equal(report.sorted_keys, np.sort(keys))

    def test_faults_actually_fired(self):
        P, n = 4, 256
        keys = make_keys(P * n, seed=8)
        plan = FaultPlan(seed=8, drop=0.25)
        report = run_chaos_sort(keys, P, plan, timeout=30)
        assert report.fault_stats["dropped"] > 0
        assert report.retry_rounds > 0
        assert report.resent_elements > 0

    def test_deterministic_replay(self):
        keys = make_keys(4 * 128, seed=9)
        plan = FaultPlan(seed=9, drop=0.15, corrupt=0.05)
        a = run_chaos_sort(keys, 4, plan, timeout=30)
        b = run_chaos_sort(keys, 4, plan, timeout=30)
        assert a.fault_stats["dropped"] == b.fault_stats["dropped"]
        assert a.fault_stats["corrupted"] == b.fault_stats["corrupted"]
        np.testing.assert_array_equal(a.sorted_keys, b.sorted_keys)

    def test_zero_rate_plan_adds_nothing(self):
        keys = make_keys(4 * 128, seed=10)
        report = run_chaos_sort(keys, 4, FaultPlan(seed=10), timeout=30)
        stats = report.fault_stats
        assert stats["dropped"] == stats["duplicated"] == 0
        assert stats["corrupted"] == stats["delayed"] == stats["crashes"] == 0
        assert report.retry_rounds == 0
        assert report.resent_elements == 0
        assert report.restarts == 0


class TestCorruptionIsNeverSilent:
    def test_unrecoverable_corruption_raises_typed_error(self):
        """A link that corrupts every copy must surface CorruptPayloadError
        naming the sending rank and the phase — not a wrong sort."""
        keys = make_keys(4 * 64, seed=11)
        plan = FaultPlan(seed=11, corrupt=1.0)
        with pytest.raises(CorruptPayloadError) as err:
            run_chaos_sort(keys, 4, plan, timeout=30, max_retries=3)
        assert err.value.rank is not None
        assert "phase" in str(err.value)
        assert err.value.attempts > 0

    def test_moderate_corruption_recovers_by_resend(self):
        keys = make_keys(4 * 128, seed=12)
        plan = FaultPlan(seed=12, corrupt=0.2)
        report = run_chaos_sort(keys, 4, plan, timeout=30)
        assert report.fault_stats["corrupted"] > 0
        np.testing.assert_array_equal(report.sorted_keys, np.sort(keys))


class TestCrashRecovery:
    def test_crash_recovers_from_checkpoint(self):
        P, n = 4, 128
        keys = make_keys(P * n, seed=13)
        plan = FaultPlan(seed=13, crash_rank=1, crash_phase=2)
        report = run_chaos_sort(keys, P, plan, timeout=30)
        np.testing.assert_array_equal(report.sorted_keys, np.sort(keys))
        assert report.fault_stats["crashes"] == 1
        assert report.restarts == 1
        assert report.resumed_stage >= 0  # resumed, not from scratch

    def test_crash_without_restart_budget_raises_peer_failed(self):
        keys = make_keys(4 * 64, seed=14)
        plan = FaultPlan(seed=14, crash_rank=2, crash_phase=1)
        with pytest.raises(PeerFailedError) as err:
            run_chaos_sort(keys, 4, plan, timeout=30, max_restarts=0)
        assert err.value.rank == 2

    def test_crash_recovery_without_checkpoints_restarts_from_scratch(self):
        keys = make_keys(4 * 64, seed=15)
        plan = FaultPlan(seed=15, crash_rank=0, crash_phase=1)
        report = run_chaos_sort(keys, 4, plan, timeout=30, checkpoint=False)
        np.testing.assert_array_equal(report.sorted_keys, np.sort(keys))
        assert report.restarts == 1
        assert report.resumed_stage == -1
        assert report.checkpoint_saves == 0

    def test_injected_crash_is_typed(self):
        """The crashing rank's own error names it and the phase."""
        inj = FaultInjector(FaultPlan(crash_rank=3, crash_phase=0))
        assert inj.check_crash(3, 0)
        exc = InjectedCrash(3, "phase-0")
        assert exc.rank == 3 and exc.phase == "phase-0"


class TestSimulatorFaultPlane:
    """The same injector wired into Machine.exchange: faults must show up
    in simulated time and V/M, and a null plan must be byte-identical."""

    def test_null_plan_byte_identical(self):
        keys = make_keys(8 * 1024, seed=16)
        base = SmartBitonicSort().run(keys, 8, verify=True).stats
        inj = FaultInjector(FaultPlan(seed=16))
        armed = SmartBitonicSort().run(keys, 8, verify=True, injector=inj).stats
        assert armed.elapsed_us == base.elapsed_us
        assert armed.remaps == base.remaps
        assert armed.volume_per_proc == base.volume_per_proc
        assert armed.messages_per_proc == base.messages_per_proc
        assert inj.stats.retries == 0

    @pytest.mark.parametrize("algo_cls", [SmartBitonicSort, CyclicBlockedBitonicSort])
    def test_sorts_survive_drops_with_makespan_penalty(self, algo_cls):
        keys = make_keys(8 * 1024, seed=17)
        base = algo_cls().run(keys, 8, verify=True).stats
        inj = FaultInjector(FaultPlan(seed=17, drop=0.05))
        st = algo_cls().run(keys, 8, verify=True, injector=inj).stats
        assert inj.stats.dropped > 0
        assert inj.stats.retries > 0
        assert st.elapsed_us > base.elapsed_us  # retransmissions cost time
        assert st.messages_per_proc > base.messages_per_proc  # M delta
        assert st.volume_per_proc > base.volume_per_proc  # V delta

    def test_corruption_and_duplication_survive_and_cost(self):
        keys = make_keys(4 * 2048, seed=18)
        base = SmartBitonicSort().run(keys, 4, verify=True).stats
        inj = FaultInjector(FaultPlan(seed=18, corrupt=0.05, duplicate=0.1))
        st = SmartBitonicSort().run(keys, 4, verify=True, injector=inj).stats
        assert inj.stats.corrupted > 0 and inj.stats.duplicated > 0
        assert st.elapsed_us > base.elapsed_us

    def test_delay_inflates_makespan_only(self):
        keys = make_keys(4 * 2048, seed=19)
        base = SmartBitonicSort().run(keys, 4, verify=True).stats
        inj = FaultInjector(FaultPlan(seed=19, delay=0.3, delay_us=2000.0))
        st = SmartBitonicSort().run(keys, 4, verify=True, injector=inj).stats
        assert inj.stats.delayed > 0
        assert st.elapsed_us > base.elapsed_us
        assert st.messages_per_proc == base.messages_per_proc  # no resends

    def test_slowdown_inflates_compute(self):
        keys = make_keys(4 * 2048, seed=20)
        base = SmartBitonicSort().run(keys, 4, verify=True).stats
        inj = FaultInjector(FaultPlan(seed=20, slowdown={0: 3.0}))
        st = SmartBitonicSort().run(keys, 4, verify=True, injector=inj).stats
        assert st.elapsed_us > base.elapsed_us

    def test_simulated_crash_raises_typed_error(self):
        keys = make_keys(4 * 1024, seed=21)
        inj = FaultInjector(FaultPlan(seed=21, crash_rank=2, crash_phase=1))
        with pytest.raises(PeerFailedError) as err:
            SmartBitonicSort().run(keys, 4, injector=inj)
        assert err.value.rank == 2
        assert err.value.phase is not None

    def test_short_message_mode_survives_drops(self):
        keys = make_keys(4 * 256, seed=22)
        inj = FaultInjector(FaultPlan(seed=22, drop=0.01))
        res = SmartBitonicSort(mode="short", fused=False).run(
            keys, 4, verify=True, injector=inj
        )
        np.testing.assert_array_equal(res.sorted_keys, np.sort(keys))


class TestWatchdogEscalation:
    def test_silent_peer_raises_peer_failed(self):
        """A link that drops every copy is reported as a dead peer."""
        keys = make_keys(4 * 64, seed=23)
        plan = FaultPlan(seed=23, drop=1.0)
        with pytest.raises((PeerFailedError, SpmdTimeoutError)) as err:
            run_chaos_sort(keys, 4, plan, timeout=30, max_retries=3,
                           max_restarts=0)
        assert isinstance(err.value, CommunicationError)

    def test_error_carries_retry_history(self):
        keys = make_keys(4 * 64, seed=24)
        plan = FaultPlan(seed=24, drop=1.0)
        try:
            run_chaos_sort(keys, 4, plan, timeout=30, max_retries=2,
                           max_restarts=0)
        except (PeerFailedError, SpmdTimeoutError) as exc:
            assert exc.phase is not None
            assert len(exc.retries) > 0
        else:  # pragma: no cover
            pytest.fail("total loss must not sort")


class TestChaosExperiment:
    def test_chaos_sweep_runs_and_rate0_is_free(self):
        from repro.harness import run_experiment

        res = run_experiment("chaos-sweep", sizes=(2,), P=4,
                             rates=(0.0, 0.1))
        rate0 = res.rows["0%"]
        assert rate0[1] == 0.0  # overhead %
        assert rate0[2] == 0  # retries
        assert rate0[3] == 0  # resent elements
        assert rate0[4] == 0  # extra messages

    def test_cli_chaos_subcommand(self, capsys):
        from repro.harness.cli import main

        assert main(["chaos", "--keys", "512", "--procs", "4",
                     "--drop", "0.1", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "verified against np.sort" in out

    def test_cli_chaos_crash_recovery(self, capsys):
        from repro.harness.cli import main

        assert main(["chaos", "--keys", "512", "--procs", "4",
                     "--drop", "0", "--crash-rank", "1",
                     "--crash-phase", "2"]) == 0
        out = capsys.readouterr().out
        assert "restarts=1" in out
