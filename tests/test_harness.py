"""Tests for the experiment harness (small sizes so they stay fast)."""

import pytest

from repro.errors import ConfigurationError
from repro.harness import EXPERIMENTS, PAPER, format_result, run_experiment
from repro.harness.experiments import default_sizes
from repro.harness.report import format_series, format_table


SMALL = (2, 4)  # keys/proc in K — tiny but sweep-shaped


class TestPaperData:
    def test_tables_present(self):
        assert set(PAPER.tables) == {"table5.1", "table5.2", "table5.3", "table5.4"}

    def test_table_5_1_values(self):
        t = PAPER.tables["table5.1"]
        assert t.rows[128] == (1.07, 0.68, 0.52)
        assert t.columns == ("Blocked-Merge", "Cyclic-Blocked", "Smart")

    def test_shapes_cover_all_figures(self):
        assert {f"figure5.{i}" for i in range(1, 9)} <= set(PAPER.shapes)


class TestRunners:
    def test_registry_covers_every_table_and_figure(self):
        for i in (1, 2, 3, 4):
            assert f"table5.{i}" in EXPERIMENTS
        for i in range(1, 9):
            assert f"figure5.{i}" in EXPERIMENTS

    def test_unknown_experiment(self):
        with pytest.raises(ConfigurationError):
            run_experiment("table9.9")

    def test_default_sizes(self):
        assert default_sizes(False) == (8, 16, 32, 64)
        assert default_sizes(True) == (128, 256, 512, 1024)

    def test_table5_1_runs_and_orders(self):
        # The paper's ordering holds at its machine size (P=32) once n is
        # large enough to amortize per-message gaps; at small P or tiny n
        # blocked-merge becomes competitive again (§3.4.3).
        res = run_experiment("table5.1", sizes=(8,), P=32)
        assert set(res.rows) == {8}
        for bm, cb, smart in res.rows.values():
            assert smart < cb < bm

    def test_table5_2_totals_grow_with_size(self):
        res = run_experiment("table5.2", sizes=SMALL, P=8)
        col = res.column("Smart")
        assert col[1] > col[0]

    def test_table5_3_short_vs_long(self):
        res = run_experiment("table5.3", sizes=(4,), P=8)
        (short, long_), = res.rows.values()
        assert short > 5 * long_

    def test_table5_4_breakdown_positive(self):
        res = run_experiment("table5.4", sizes=(4,), P=8)
        (pack, transfer, unpack), = res.rows.values()
        assert pack > 0 and transfer > 0 and unpack > 0
        # Figure 5.6's claim: pack+unpack dominates the breakdown.
        assert pack + unpack > transfer

    def test_figure5_3_time_falls_with_p(self):
        res = run_experiment("figure5.3", total_keys_k=64)
        secs = res.column("total seconds")
        assert secs == sorted(secs, reverse=True)

    def test_figure5_4_shares_sum_to_100(self):
        res = run_experiment("figure5.4", sizes=SMALL, P=8)
        for _, _, comp_pct, comm_pct in res.rows.values():
            assert comp_pct + comm_pct == pytest.approx(100.0, abs=0.2)

    def test_figure5_7_runs(self):
        res = run_experiment("figure5.7", sizes=(4,))
        assert res.columns == ("Bitonic (Smart)", "Radix", "Sample")

    def test_comm_counts_theory_matches(self):
        res = run_experiment("comm-counts", sizes=(2,), P=8)
        for r_t, r_m, v_t, v_m, m_t, m_m in res.rows.values():
            assert (r_t, v_t, m_t) == (r_m, v_m, m_m)

    def test_remap_strategies_lemma5(self):
        res = run_experiment("remap-strategies", sizes=(2,), P=16)
        vols = {k: v[1] for k, v in res.rows.items() if isinstance(v[1], int)}
        if "tail" in vols and "head" in vols:
            assert vols["tail"] <= vols["head"]

    def test_bitonic_min_logarithmic(self):
        res = run_experiment("bitonic-min")
        comps = res.column("comparisons")
        ns = list(res.rows)
        # comparisons grow by a constant per quadrupling of n.
        diffs = [b - a for a, b in zip(comps, comps[1:])]
        assert max(diffs) <= 6
        assert ns[-1] / ns[0] > 1000

    def test_local_compute_ablation_ordering(self):
        res = run_experiment("local-compute", sizes=(4,), P=8)
        totals = {k: v[0] for k, v in res.rows.items()}
        assert totals["merge+fused (Smart)"] <= totals["simulate, unfused"]


class TestReport:
    def test_format_table(self):
        text = format_table(("a", "b"), {1: (2.0, 3.0), 2: (4.0, 5.5)})
        assert "a" in text and "5.5" in text

    def test_format_series(self):
        text = format_series("series", [1, 2], [0.5, 1.0])
        assert "#" in text

    def test_format_series_empty(self):
        assert "(empty)" in format_series("x", [], [])

    def test_format_result_includes_paper(self):
        res = run_experiment("table5.1", sizes=(2,), P=8)
        text = format_result(res)
        assert "paper" in text and "Smart" in text


class TestCli:
    def test_list(self, capsys):
        from repro.harness.cli import main

        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table5.1" in out

    def test_single_experiment(self, capsys):
        from repro.harness.cli import main

        assert main(["bitonic-min"]) == 0
        assert "Algorithm 2" in capsys.readouterr().out
