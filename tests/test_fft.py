"""Tests for the FFT generalization of the remap framework."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ScheduleError, SizeError, VerificationError
from repro.fft import (
    ParallelFFT,
    bit_reverse_permute,
    butterfly_schedule,
    fft_reference,
    window_layout,
)
from repro.layouts import blocked_layout, cyclic_layout


def _signal(rng, n):
    return rng.normal(size=n) + 1j * rng.normal(size=n)


class TestSequentialFFT:
    @pytest.mark.parametrize("n", [1, 2, 4, 8, 64, 1024])
    def test_matches_numpy(self, n, rng):
        x = _signal(rng, n)
        np.testing.assert_allclose(fft_reference(x), np.fft.fft(x), rtol=1e-9,
                                   atol=1e-9)

    def test_inverse(self, rng):
        x = _signal(rng, 64)
        np.testing.assert_allclose(fft_reference(x, inverse=True),
                                   np.fft.ifft(x) * 64, rtol=1e-9, atol=1e-9)

    def test_roundtrip(self, rng):
        x = _signal(rng, 128)
        back = fft_reference(fft_reference(x), inverse=True) / 128
        np.testing.assert_allclose(back, x, rtol=1e-9, atol=1e-9)

    def test_real_signal_symmetry(self, rng):
        x = rng.normal(size=32).astype(np.complex128)
        X = fft_reference(x)
        np.testing.assert_allclose(X[1:], np.conj(X[1:][::-1]), rtol=1e-9,
                                   atol=1e-9)

    def test_rejects_non_power_of_two(self):
        with pytest.raises(SizeError):
            fft_reference(np.zeros(12, dtype=complex))

    def test_bit_reverse_permute_involution(self, rng):
        x = _signal(rng, 64)
        np.testing.assert_array_equal(bit_reverse_permute(bit_reverse_permute(x)), x)


class TestWindowLayouts:
    def test_window_zero_is_blocked(self):
        assert window_layout(256, 8, 0) == blocked_layout(256, 8)

    def test_window_lgp_is_cyclic(self):
        assert window_layout(256, 8, 3) == cyclic_layout(256, 8)

    def test_out_of_range_rejected(self):
        with pytest.raises(ScheduleError):
            window_layout(256, 8, 6)

    def test_schedule_covers_each_level_once(self):
        for N, P in [(64, 4), (256, 16), (1 << 12, 8), (64, 32)]:
            phases = butterfly_schedule(N, P)
            levels = [lv for _, rng_ in phases for lv in rng_]
            assert levels == list(range(1, N.bit_length()))
            # Every phase's levels are local under its layout.
            for layout, rng_ in phases:
                for lv in rng_:
                    assert layout.local_bit_of_abs_bit(lv - 1) is not None

    def test_one_remap_when_n_ge_p(self):
        """[CKP+93]: n >= P needs exactly one blocked->cyclic remap."""
        phases = butterfly_schedule(1 << 12, 16)
        assert len(phases) == 2
        assert phases[0][0] == blocked_layout(1 << 12, 16)
        assert phases[1][0] == cyclic_layout(1 << 12, 16)

    def test_sliding_window_when_n_lt_p(self):
        """n < P: ceil(lgP/lgn) remaps, generalizing the cyclic-blocked
        restriction away exactly as the smart layout does for sorting."""
        phases = butterfly_schedule(64, 32)  # lg n = 1, lg P = 5
        assert len(phases) - 1 == 5

    def test_single_processor(self):
        phases = butterfly_schedule(64, 1)
        assert len(phases) == 1


class TestParallelFFT:
    @pytest.mark.parametrize("P,n", [(2, 32), (4, 64), (8, 16), (16, 64)])
    def test_matches_numpy(self, P, n, rng):
        x = _signal(rng, P * n)
        ParallelFFT().run(x, P, verify=True)

    def test_inverse_transform(self, rng):
        x = _signal(rng, 256)
        ParallelFFT(inverse=True).run(x, 8, verify=True)

    def test_n_less_than_p(self, rng):
        x = _signal(rng, 64)
        ParallelFFT().run(x, 32, verify=True)

    def test_single_processor(self, rng):
        x = _signal(rng, 128)
        ParallelFFT().run(x, 1, verify=True)

    def test_remap_count(self, rng):
        x = _signal(rng, 1 << 12)
        res = ParallelFFT().run(x, 16)
        assert res.stats.remaps == 1  # n >= P: the classic single remap
        res2 = ParallelFFT().run(_signal(rng, 128), 32)  # lg n = 2, lg P = 5
        assert res2.stats.remaps == 3

    def test_volume_counted_in_points(self, rng):
        """One all-to-all remap moves n - n/P points per processor."""
        P, n = 8, 512
        res = ParallelFFT().run(_signal(rng, P * n), P)
        assert res.stats.volume_per_proc == n - n // P

    def test_verify_catches_corruption(self, rng):
        x = _signal(rng, 64)
        res = ParallelFFT().run(x, 4)
        res.output[3] += 1.0
        with pytest.raises(VerificationError):
            res.verify(x)

    @given(st.integers(0, 10_000))
    def test_property_random_signals(self, seed):
        rng = np.random.default_rng(seed)
        P = int(rng.choice([2, 4, 8]))
        n = int(rng.choice([8, 32]))
        x = _signal(rng, P * n)
        ParallelFFT().run(x, P, verify=True)

    def test_faster_than_naive_layout(self, rng):
        """The windowed FFT's communication beats executing every level
        under the blocked layout with pairwise exchanges would (sanity on
        the cost accounting: 1 remap of (1-1/P)n points vs lg P exchanges
        of n points)."""
        P, n = 16, 1024
        res = ParallelFFT().run(_signal(rng, P * n), P)
        assert res.stats.volume_per_proc < n * 4  # lgP * n would be 4096... times 4
