"""Edge-case and cross-feature tests for the machine simulator."""

from dataclasses import replace

import numpy as np
import pytest

from repro.fft.layouts import window_layout
from repro.layouts import smart_layout
from repro.machine import Machine, Message
from repro.model.machines import MEIKO_CS2
from repro.utils.bits import ilog2


class TestByteAccounting:
    def test_wire_cost_follows_itemsize(self):
        """Equal element counts, different dtypes: the 8-byte payload costs
        about twice the injection time of the 4-byte one."""
        m4, m8 = Machine(2), Machine(2)
        m4.exchange([Message(0, 1, np.arange(10_000, dtype=np.uint32))])
        m8.exchange([Message(0, 1, np.arange(10_000, dtype=np.uint64))])
        t4 = m4.procs[0].breakdown.times["transfer"]
        t8 = m8.procs[0].breakdown.times["transfer"]
        assert t8 / t4 == pytest.approx(2.0, rel=0.05)

    def test_complex_payloads(self):
        m = Machine(2)
        m.exchange([Message(0, 1, np.zeros(100, dtype=np.complex128))])
        # 1600 bytes on the wire.
        expect = m.net.o + (1600 - 1) * m.net.G
        assert m.procs[0].breakdown.times["transfer"] == pytest.approx(expect)

    def test_volume_still_counted_in_elements(self):
        m = Machine(2)
        m.exchange([Message(0, 1, np.zeros(100, dtype=np.complex128))])
        assert m.procs[0].elements_sent == 100


class TestDmaShortInterplay:
    def test_dma_does_not_affect_short_messages(self):
        """Short messages have no bulk injection to offload: the LogP
        formula applies unchanged."""
        plain, dma = Machine(2), Machine(2, replace(MEIKO_CS2, dma_offload=True))
        payload = np.arange(64, dtype=np.uint32)
        plain.exchange([Message(0, 1, payload)], mode="short")
        dma.exchange([Message(0, 1, payload)], mode="short")
        assert (plain.procs[0].breakdown.times["transfer"]
                == dma.procs[0].breakdown.times["transfer"])


class TestDeterminismUnderTies:
    def test_simultaneous_arrivals_ordered_by_source(self):
        """Two identical messages arriving at the same instant are
        processed in source order — reruns are bit-identical."""
        def run():
            m = Machine(3)
            m.exchange([
                Message(2, 0, np.arange(4, dtype=np.uint32)),
                Message(1, 0, np.arange(4, dtype=np.uint32)),
            ])
            return m.procs[0].clock

        assert run() == run()


class TestWindowSmartLayoutRelation:
    def test_inside_smart_layout_is_a_window(self):
        """An *inside* smart remap's layout is exactly the FFT bit-window
        at its t parameter — the two generalizations share one geometry."""
        N, P = 1 << 10, 16
        lgn = ilog2(N // P)
        for stage, step in [(7, 7), (8, 8), (9, 7), (10, 10)]:
            if step < lgn:
                continue
            from repro.layouts.smart import smart_params

            params = smart_params(N, P, stage, step)
            if params.is_crossing or params.is_last:
                continue
            assert smart_layout(N, P, stage, step) == window_layout(N, P, params.t)

    def test_window_zero_matches_last_smart_remap(self):
        N, P = 1 << 10, 16
        lgN = ilog2(N)
        assert window_layout(N, P, 0) == smart_layout(N, P, lgN, 2)
