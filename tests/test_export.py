"""Tests for the JSON export of results and statistics."""

import json

from repro.harness import run_experiment
from repro.harness.export import dump_result, result_to_dict, stats_to_dict
from repro.sorts import SmartBitonicSort
from repro.utils.rng import make_keys


class TestStatsExport:
    def test_roundtrips_through_json(self):
        stats = SmartBitonicSort().run(make_keys(512, seed=1), 4).stats
        d = stats_to_dict(stats)
        loaded = json.loads(json.dumps(d))
        assert loaded["P"] == 4 and loaded["n"] == 128
        assert loaded["remaps"] == stats.remaps
        assert set(loaded["breakdown_us"]) >= {"transfer", "merge", "local_sort"}

    def test_derived_fields_consistent(self):
        stats = SmartBitonicSort().run(make_keys(512, seed=2), 4).stats
        d = stats_to_dict(stats)
        assert d["us_per_key"] * d["n"] == d["elapsed_us"]
        assert d["seconds_total"] == d["elapsed_us"] * 1e-6


class TestResultExport:
    def test_contains_paper_rows(self):
        res = run_experiment("table5.1", sizes=(2,), P=8)
        d = result_to_dict(res)
        assert d["ident"] == "table5.1"
        assert d["paper_rows"]["128"] == [1.07, 0.68, 0.52]
        assert list(d["rows"]) == ["2"]

    def test_dump_to_file(self, tmp_path):
        res = run_experiment("bitonic-min")
        out = tmp_path / "res.json"
        text = dump_result(res, out)
        assert json.loads(out.read_text()) == json.loads(text)
        assert json.loads(text)["unit"] == "comparisons"
