"""Tests for remap schedules (smart, cyclic-blocked, and Lemma 5 variants)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ScheduleError
from repro.layouts import (
    bits_changed_lemma3,
    build_schedule,
    cyclic_blocked_schedule,
    remap_count_cyclic_blocked,
    remap_count_smart,
    smart_schedule,
    volume_cyclic_blocked,
    volume_smart_closed_form,
)
from repro.layouts.smart import smart_params
from repro.utils.bits import ilog2


def _cases():
    return st.tuples(
        st.integers(2, 14),   # lg N
        st.integers(1, 7),    # lg P
    ).filter(lambda t: t[1] < t[0])  # n >= 2


class TestSmartSchedule:
    def test_paper_example_n256_p16(self):
        sched = smart_schedule(256, 16)
        assert sched.num_remaps == 7
        assert sched.bits_changed_per_remap() == [1, 2, 3, 3, 4, 4, 2]
        # Figure 3.3's narration: fewer remaps than cyclic-blocked's 8.
        assert sched.num_remaps < cyclic_blocked_schedule(256, 16).num_remaps

    def test_large_n_regime(self):
        """For lgP(lgP+1)/2 <= lg n: R = lg P + 1 and V = n lg P."""
        N, P = 1 << 16, 16
        sched = smart_schedule(N, P)
        assert sched.num_remaps == ilog2(P) + 1
        assert sched.volume_per_processor() == (N // P) * ilog2(P)

    @given(_cases())
    def test_covers_region_exactly(self, case):
        lgN, lgP = case
        N, P = 1 << lgN, 1 << lgP
        lgn = lgN - lgP
        sched = smart_schedule(N, P)
        total = sum(ph.num_steps for ph in sched.phases)
        assert total == lgP * lgn + lgP * (lgP + 1) // 2
        # Columns are the region's columns, in order, without gaps.
        cols = [c for ph in sched.phases for c in ph.columns]
        expect = [
            (stage, step)
            for stage in range(lgn + 1, lgN + 1)
            for step in range(stage, 0, -1)
        ]
        assert cols == expect

    @given(_cases())
    def test_remap_count_formula(self, case):
        lgN, lgP = case
        N, P = 1 << lgN, 1 << lgP
        assert smart_schedule(N, P).num_remaps == remap_count_smart(N, P)

    @given(_cases())
    def test_every_phase_local(self, case):
        lgN, lgP = case
        sched = smart_schedule(1 << lgN, 1 << lgP)
        for ph in sched.phases:
            for _, step in ph.columns:
                assert ph.layout.step_is_local(step)

    @given(_cases())
    def test_phase_lengths_bounded_by_lemma1(self, case):
        """No phase executes more than lg n steps (Lemma 1's bound)."""
        lgN, lgP = case
        lgn = lgN - lgP
        sched = smart_schedule(1 << lgN, 1 << lgP)
        assert all(1 <= ph.num_steps <= lgn for ph in sched.phases)

    @given(_cases())
    def test_lemma3_bit_counts(self, case):
        """The empirical pattern-difference counts match Lemma 3's formula
        for every remap of every schedule."""
        lgN, lgP = case
        N, P = 1 << lgN, 1 << lgP
        lgn = lgN - lgP
        sched = smart_schedule(N, P)
        for ph, bc in zip(sched.phases, sched.bits_changed_per_remap()):
            stage, step = ph.columns[0]
            params = smart_params(N, P, stage, step)
            assert bc == bits_changed_lemma3(params, lgn, lgP), (N, P, stage, step)

    @given(_cases())
    def test_volume_closed_form(self, case):
        """§3.2.1's closed form equals the schedule-counted volume
        (derived for n >= P; verified there)."""
        lgN, lgP = case
        N, P = 1 << lgN, 1 << lgP
        if N // P < P:
            return
        sched = smart_schedule(N, P)
        assert sched.volume_per_processor() == volume_smart_closed_form(N, P)

    def test_n1_rejected(self):
        with pytest.raises(ScheduleError, match="n >= 2"):
            smart_schedule(8, 8)

    def test_smart_beats_cyclic_blocked_on_R_and_V(self):
        """Theorem 1 + §3.2.1 on a sweep: fewer remaps, less volume."""
        for lgN, lgP in [(8, 2), (10, 3), (12, 4), (16, 5), (14, 3)]:
            N, P = 1 << lgN, 1 << lgP
            if N < P * P:
                continue
            s = smart_schedule(N, P)
            assert s.num_remaps <= remap_count_cyclic_blocked(P)
            assert s.volume_per_processor() <= volume_cyclic_blocked(N, P)


class TestCyclicBlockedSchedule:
    def test_remap_count(self):
        assert cyclic_blocked_schedule(256, 16).num_remaps == 8

    def test_alternates_cyclic_blocked(self):
        sched = cyclic_blocked_schedule(256, 4)
        names = [ph.layout.name for ph in sched.phases]
        assert names == ["cyclic", "blocked"] * 2

    def test_every_phase_local(self):
        sched = cyclic_blocked_schedule(1024, 8)
        for ph in sched.phases:
            for _, step in ph.columns:
                assert ph.layout.step_is_local(step)

    def test_requires_n_ge_p(self):
        with pytest.raises(ScheduleError, match="P\\*\\*2"):
            cyclic_blocked_schedule(32, 8)

    def test_volume_matches_formula(self):
        sched = cyclic_blocked_schedule(1024, 8)
        assert sched.volume_per_processor() == volume_cyclic_blocked(1024, 8)


class TestLemma5Strategies:
    def test_tail_never_worse_than_head(self):
        for lgN, lgP in [(10, 3), (12, 4), (14, 5), (16, 4), (11, 3)]:
            N, P = 1 << lgN, 1 << lgP
            head = build_schedule(N, P, "head").volume_per_processor()
            tail = build_schedule(N, P, "tail").volume_per_processor()
            assert tail <= head, (N, P)

    def test_middle1_worse_than_head(self):
        """V_head < V_middle1 whenever middle1 applies (n >= P**2)."""
        for lgN, lgP in [(13, 2), (18, 3), (22, 4)]:
            N, P = 1 << lgN, 1 << lgP
            if (N // P) < P * P:
                continue
            try:
                mid = build_schedule(N, P, "middle1")
            except ScheduleError:
                continue
            head = build_schedule(N, P, "head")
            assert head.volume_per_processor() < mid.volume_per_processor(), (N, P)

    def test_middle2_not_better_than_tail(self):
        for lgN, lgP in [(13, 2), (18, 3), (22, 4)]:
            N, P = 1 << lgN, 1 << lgP
            if (N // P) < P * P:
                continue
            try:
                mid = build_schedule(N, P, "middle2")
            except ScheduleError:
                continue
            tail = build_schedule(N, P, "tail")
            assert tail.volume_per_processor() <= mid.volume_per_processor(), (N, P)

    def test_head_equals_tail_when_no_remainder(self):
        """For lgP(lgP+1)/2 <= lg n the placements coincide in volume."""
        N, P = 1 << 16, 16  # lg n = 12 >= 10
        head = build_schedule(N, P, "head")
        tail = build_schedule(N, P, "tail")
        assert head.volume_per_processor() == tail.volume_per_processor()

    def test_middle_strategies_reject_zero_remainder(self):
        # lgP(lgP+1)/2 = 1, lg n = 1 -> rem = 0 for P=2, N=4? lgn=1, total=1*1+1=2, rem=0
        with pytest.raises(ScheduleError):
            build_schedule(16, 2, "middle1")

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ScheduleError, match="unknown strategy"):
            build_schedule(64, 4, "sideways")

    def test_describe_renders(self):
        text = smart_schedule(256, 16).describe()
        assert "remap 0" in text and "bits_changed=1" in text
