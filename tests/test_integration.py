"""Cross-module integration tests: the library's pieces agree with each
other end to end.

These check invariants that span several subsystems at once — the layout
algebra, the remap machinery, the simulator's accounting, the closed-form
theory, the predictor, and the sorts — over sweeps of machine/problem
shapes, including the awkward regimes (n < P, P = N, tiny n).
"""

import numpy as np
import pytest

from repro.layouts import blocked_layout, smart_schedule
from repro.layouts.schedule import build_schedule
from repro.network.properties import is_bitonic, is_sorted_ascending
from repro.network.sequential import bitonic_sort_network
from repro.remap.plan import build_remap_plan
from repro.sorts import SmartBitonicSort
from repro.theory import counts_for, predict_smart
from repro.utils.bits import ilog2
from repro.utils.rng import make_keys

SHAPES = [(16, 2), (64, 4), (64, 8), (256, 4), (256, 16), (1024, 8),
          (1024, 32), (128, 32), (4096, 16)]


class TestLayoutRemapSimulatorAgreement:
    @pytest.mark.parametrize("N,P", SHAPES)
    def test_plans_route_every_address_once(self, N, P):
        """Across every transition of the smart schedule, the union of all
        processors' keep+send covers the whole address space exactly once
        and lands exactly where the new layout says."""
        if N // P < 2:
            pytest.skip("smart schedule needs n >= 2")
        sched = smart_schedule(N, P)
        for old, new in sched.transitions():
            landed = np.full(N, -1, dtype=np.int64)
            for r in range(P):
                plan = build_remap_plan(old, new, r)
                src_abs = old.to_absolute(np.int64(r), plan.keep_src)
                dst_abs = new.to_absolute(np.int64(r), plan.keep_dst)
                np.testing.assert_array_equal(src_abs, dst_abs)
                landed[src_abs] = r
                for q, idx in plan.send.items():
                    sent_abs = old.to_absolute(np.int64(r), idx)
                    assert np.all(new.proc_of(sent_abs) == q)
                    landed[sent_abs] = q
            np.testing.assert_array_equal(landed, new.proc_of(np.arange(N)))

    @pytest.mark.parametrize("N,P", SHAPES)
    def test_counts_consistent_everywhere(self, N, P):
        """counts_for == schedule counts == simulator counts."""
        if N // P < 2:
            pytest.skip("smart schedule needs n >= 2")
        sched = smart_schedule(N, P)
        c = counts_for("smart", N, P)
        assert c.remaps == sched.num_remaps
        assert c.volume == sched.volume_per_processor()
        assert c.messages == sched.messages_per_processor()
        stats = SmartBitonicSort().run(make_keys(N, seed=N + P), P).stats
        assert (stats.remaps, stats.volume_per_proc, stats.messages_per_proc) == (
            c.remaps, c.volume, c.messages
        )

    @pytest.mark.parametrize("N,P", SHAPES)
    def test_predictor_consistent_with_simulator(self, N, P):
        if N // P < 2:
            pytest.skip("smart schedule needs n >= 2")
        stats = SmartBitonicSort().run(make_keys(N, seed=N - P), P).stats
        pred = predict_smart(N, P)
        busy = stats.mean_breakdown.total() - stats.mean_breakdown.times["wait"]
        assert busy == pytest.approx(pred.total, rel=1e-9, abs=1e-6)


class TestIntermediateStateInvariants:
    def test_lemma_structure_through_a_real_run(self):
        """Instrument an actual smart-sort run: after every remap phase the
        per-processor data obeys the structure the theorems promise —
        and the final global result equals the sequential network's."""
        N, P = 1024, 8
        keys = make_keys(N, seed=5)
        # Re-create the algorithm's steps manually with the public pieces.
        from repro.localsort.radix import radix_sort
        from repro.machine import Machine
        from repro.remap import perform_remap
        from repro.sorts.smart import SmartBitonicSort as S

        machine = Machine(P)
        sched = smart_schedule(N, P)
        lay = sched.initial_layout
        parts = machine.partition(keys)
        parts = [radix_sort(p, ascending=(r % 2 == 0))
                 for r, p in enumerate(parts)]
        algo = S()
        lgn = ilog2(N // P)
        for phase in sched.phases:
            parts = perform_remap(machine, parts, lay, phase.layout)
            lay = phase.layout
            # Theorem 2: before an inside phase the local data is bitonic.
            from repro.layouts.smart import smart_params

            pr = smart_params(N, P, *phase.columns[0])
            if not pr.is_crossing and not pr.is_last:
                for r in range(P):
                    assert is_bitonic(parts[r]), r
            algo._merge_phase(machine, parts, lay, phase, lgn)
            if not pr.is_crossing:
                for r in range(P):
                    assert is_bitonic(parts[r])  # sorted is bitonic too
        out = np.concatenate(parts)
        np.testing.assert_array_equal(out, np.sort(keys))
        np.testing.assert_array_equal(out, bitonic_sort_network(keys))

    def test_all_strategies_equal_output(self):
        """Head/tail/middle placements differ only in communication volume,
        never in the sorted result."""
        N, P = 2048, 8
        keys = make_keys(N, seed=77)
        outputs = []
        for strategy in ("head", "tail", "middle2"):
            try:
                build_schedule(N, P, strategy)
            except Exception:
                continue
            res = SmartBitonicSort(strategy=strategy).run(keys, P, verify=True)
            outputs.append(res.sorted_keys)
        for out in outputs[1:]:
            np.testing.assert_array_equal(out, outputs[0])


class TestScaleInvariance:
    def test_per_key_time_stabilizes(self):
        """Per-key simulated time converges as n grows (fixed overheads
        amortize): consecutive doublings change it by < 10%."""
        times = []
        for n in (2048, 4096, 8192, 16384):
            st = SmartBitonicSort().run(make_keys(8 * n, seed=n), 8).stats
            times.append(st.us_per_key)
        for a, b in zip(times[-2:], times[-1:]):
            assert abs(a - b) / a < 0.1

    def test_doubling_p_adds_about_one_remap(self):
        """R = lg P + 1 in the large-n regime."""
        n = 1 << 14
        for P in (2, 4, 8, 16):
            st = SmartBitonicSort().run(make_keys(P * n, seed=P), P).stats
            assert st.remaps == ilog2(P) + 1

    def test_blocked_initial_equals_final_layout(self):
        """The sort starts and ends blocked: output gathered in processor
        order is globally ascending."""
        for N, P in [(512, 4), (2048, 16)]:
            res = SmartBitonicSort().run(make_keys(N, seed=N), P)
            assert is_sorted_ascending(res.sorted_keys)
            assert blocked_layout(N, P).pattern() == smart_schedule(N, P).phases[-1].layout.pattern()
