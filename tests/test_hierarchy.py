"""Tests for the memory-hierarchy application of the remap technique."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.hierarchy import (
    TrafficCounter,
    naive_butterfly_traffic,
    tiled_butterfly_traffic,
    tiled_fft,
)
from repro.utils.bits import ilog2


class TestTrafficCounter:
    def test_load_store_accounting(self):
        c = TrafficCounter(capacity=8)
        c.load(8)
        c.store(8)
        assert c.total_traffic == 16
        assert c.resident == 0

    def test_capacity_enforced(self):
        c = TrafficCounter(capacity=8)
        c.load(8)
        with pytest.raises(ConfigurationError, match="exceeds"):
            c.load(1)

    def test_cannot_store_more_than_resident(self):
        c = TrafficCounter(capacity=8)
        c.load(4)
        with pytest.raises(ConfigurationError):
            c.store(5)

    def test_rejects_zero_capacity(self):
        with pytest.raises(ConfigurationError):
            TrafficCounter(capacity=0)


class TestAnalyticTraffic:
    def test_fits_in_cache(self):
        assert naive_butterfly_traffic(64, 128) == 128
        assert tiled_butterfly_traffic(64, 128) == 128

    def test_naive_streams_per_level(self):
        assert naive_butterfly_traffic(1 << 10, 64) == 2 * (1 << 10) * 10

    def test_tiled_windows(self):
        # lg N = 12, lg C = 4 -> 3 passes.
        assert tiled_butterfly_traffic(1 << 12, 16) == 2 * (1 << 12) * 3

    def test_improvement_ratio_is_lgC(self):
        """The paper's hierarchy claim: traffic shrinks by ~lg C."""
        N, C = 1 << 20, 1 << 10
        ratio = naive_butterfly_traffic(N, C) / tiled_butterfly_traffic(N, C)
        assert ratio == pytest.approx(ilog2(C), rel=0.01)

    @given(st.integers(3, 18), st.integers(1, 10))
    def test_tiled_never_worse(self, lgN, lgC):
        N, C = 1 << lgN, 1 << lgC
        assert tiled_butterfly_traffic(N, C) <= naive_butterfly_traffic(N, C)


class TestTiledFFT:
    @pytest.mark.parametrize("n,cap", [(64, 8), (256, 16), (1024, 4), (64, 256)])
    def test_matches_numpy(self, n, cap, rng):
        x = rng.normal(size=n) + 1j * rng.normal(size=n)
        res = tiled_fft(x, cap)
        np.testing.assert_allclose(res.output, np.fft.fft(x), rtol=1e-9, atol=1e-6)

    @pytest.mark.parametrize("n,cap", [(256, 16), (1 << 12, 64), (1 << 10, 4)])
    def test_traffic_matches_closed_form(self, n, cap, rng):
        x = rng.normal(size=n).astype(complex)
        res = tiled_fft(x, cap)
        assert res.traffic.total_traffic == tiled_butterfly_traffic(n, cap)

    def test_pass_count(self, rng):
        x = rng.normal(size=1 << 12).astype(complex)
        res = tiled_fft(x, 16)  # lg N = 12, lg C = 4
        assert res.passes == 3

    def test_in_cache_single_pass(self, rng):
        x = rng.normal(size=64).astype(complex)
        res = tiled_fft(x, 64)
        assert res.passes == 1
        assert res.traffic.total_traffic == 128

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ConfigurationError):
            tiled_fft(np.zeros(12, dtype=complex), 4)
        with pytest.raises(ConfigurationError):
            tiled_fft(np.zeros(16, dtype=complex), 6)
