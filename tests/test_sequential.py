"""Tests for the sequential reference networks (the ground truth)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import SizeError
from repro.network.properties import is_bitonic, is_sorted_ascending
from repro.network.sequential import (
    batcher_sort,
    bitonic_merge_network,
    bitonic_sort_network,
    compare_exchange_step,
)


class TestBitonicSortNetwork:
    @pytest.mark.parametrize("n", [2, 4, 8, 16, 64, 256])
    def test_sorts_random(self, n, rng):
        a = rng.integers(0, 1000, n)
        np.testing.assert_array_equal(bitonic_sort_network(a), np.sort(a))

    def test_sorts_with_duplicates(self, rng):
        a = rng.integers(0, 4, 64)
        np.testing.assert_array_equal(bitonic_sort_network(a), np.sort(a))

    def test_already_sorted_and_reverse(self):
        a = np.arange(32)
        np.testing.assert_array_equal(bitonic_sort_network(a), a)
        np.testing.assert_array_equal(bitonic_sort_network(a[::-1].copy()), a)

    def test_input_not_mutated(self, rng):
        a = rng.integers(0, 100, 16)
        b = a.copy()
        bitonic_sort_network(a)
        np.testing.assert_array_equal(a, b)

    def test_trivial_sizes(self):
        np.testing.assert_array_equal(bitonic_sort_network(np.array([5])), [5])
        np.testing.assert_array_equal(bitonic_sort_network(np.array([])), [])

    def test_rejects_non_power_of_two(self):
        with pytest.raises(SizeError):
            bitonic_sort_network(np.arange(12))

    @given(st.integers(0, 2**32), st.sampled_from([2, 4, 8, 16, 32, 64]))
    def test_property_sorts(self, seed, n):
        a = np.random.default_rng(seed).integers(0, 2**31, n, dtype=np.uint32)
        np.testing.assert_array_equal(bitonic_sort_network(a), np.sort(a))


class TestBatcherSort:
    @pytest.mark.parametrize("n", [1, 2, 8, 64, 128])
    def test_matches_network(self, n, rng):
        a = rng.integers(0, 500, n)
        np.testing.assert_array_equal(batcher_sort(a), np.sort(a))

    def test_descending(self, rng):
        a = rng.integers(0, 500, 32)
        np.testing.assert_array_equal(batcher_sort(a, ascending=False),
                                      np.sort(a)[::-1])

    def test_rejects_non_power_of_two(self):
        with pytest.raises(SizeError):
            batcher_sort(np.arange(7))


class TestStageStructure:
    """Lemma 6 / Lemma 7: the data shape at stage boundaries and columns."""

    def test_lemma6_stage_input_runs(self, rng):
        """After stages 1..k-1, the array is alternating sorted runs of
        length 2**(k-1)."""
        n = 64
        a = rng.integers(0, 1000, n)
        data = a.copy()
        from repro.network.addressing import steps_of_stage

        for stage in range(1, 7):
            # Check Lemma 6 on the input of this stage.
            run = 1 << (stage - 1)
            runs = data.reshape(-1, run)
            for j, r in enumerate(runs):
                if j % 2 == 0:
                    assert is_sorted_ascending(r), (stage, j)
                else:
                    assert is_sorted_ascending(r[::-1]), (stage, j)
            for step in steps_of_stage(stage):
                compare_exchange_step(data, stage, step)
        np.testing.assert_array_equal(data, np.sort(a))

    def test_lemma7_column_bitonic_runs(self, rng):
        """At column s of stage k the array consists of bitonic runs of
        length 2**s."""
        n = 64
        data = rng.integers(0, 1000, n)
        from repro.network.addressing import steps_of_stage

        for stage in range(1, 7):
            for step in steps_of_stage(stage):
                # Before executing `step`, column == step: bitonic runs of
                # length 2**step.
                for run in data.reshape(-1, 1 << step):
                    assert is_bitonic(run), (stage, step)
                compare_exchange_step(data, stage, step)

    def test_bitonic_merge_network_sorts_stage_input(self, rng):
        """A full stage turns Lemma 6's input into sorted runs of twice the
        length."""
        up = np.sort(rng.integers(0, 100, 8))
        down = np.sort(rng.integers(0, 100, 8))[::-1]
        data = np.concatenate([up, down, up[::-1] * 0 + np.sort(rng.integers(0, 100, 8)),
                               np.sort(rng.integers(0, 100, 8))[::-1]])
        out = bitonic_merge_network(data, stage=4)
        for j, run in enumerate(out.reshape(-1, 16)):
            if j % 2 == 0:
                assert is_sorted_ascending(run)
            else:
                assert is_sorted_ascending(run[::-1])

    def test_merge_network_rejects_bad_stage(self):
        with pytest.raises(SizeError):
            bitonic_merge_network(np.arange(8), stage=4)
